"""Unit tests for the periodic traffic model."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.network.topology import RingTopology
from repro.network.traffic import TrafficModel


@pytest.fixture
def traffic() -> TrafficModel:
    return TrafficModel(RingTopology(depth=5, density=8), sampling_rate=0.01)


class TestTrafficModel:
    def test_output_rate_formula_ring1(self, traffic: TrafficModel):
        # F_out(1) = Fs * D^2 / 1
        assert traffic.output_rate(1) == pytest.approx(0.01 * 25)

    def test_output_rate_formula_general(self, traffic: TrafficModel):
        for ring in range(1, 6):
            expected = 0.01 * (25 - (ring - 1) ** 2) / (2 * ring - 1)
            assert traffic.output_rate(ring) == pytest.approx(expected)

    def test_outermost_ring_only_sends_own_traffic(self, traffic: TrafficModel):
        assert traffic.output_rate(5) == pytest.approx(traffic.sampling_rate)
        assert traffic.input_rate(5) == pytest.approx(0.0)

    def test_flow_conservation_per_ring(self, traffic: TrafficModel):
        for ring in range(1, 6):
            assert traffic.output_rate(ring) == pytest.approx(
                traffic.input_rate(ring) + traffic.sampling_rate
            )

    def test_network_flow_conservation_at_sink(self, traffic: TrafficModel):
        # Everything that ring-1 nodes transmit arrives at the sink.
        topology = traffic.topology
        ring1_total = traffic.output_rate(1) * topology.nodes_in_ring(1)
        assert ring1_total == pytest.approx(traffic.sink_arrival_rate())

    def test_background_rate_nonnegative_and_scales_with_density(self):
        sparse = TrafficModel(RingTopology(depth=4, density=3), 0.01)
        dense = TrafficModel(RingTopology(depth=4, density=12), 0.01)
        for ring in range(1, 5):
            assert sparse.background_rate(ring) >= 0
            assert dense.background_rate(ring) > sparse.background_rate(ring)

    def test_input_links_match_topology(self, traffic: TrafficModel):
        assert traffic.input_links(5) == 0.0
        assert traffic.input_links(1) == pytest.approx(3.0)

    def test_ring_traffic_bundle_consistency(self, traffic: TrafficModel):
        bundle = traffic.ring_traffic(2)
        assert bundle.output == pytest.approx(traffic.output_rate(2))
        assert bundle.relay_fraction == pytest.approx(bundle.input / bundle.output)

    def test_all_rings_returns_every_ring(self, traffic: TrafficModel):
        assert sorted(traffic.all_rings()) == [1, 2, 3, 4, 5]

    def test_bottleneck_is_ring_one(self, traffic: TrafficModel):
        rates = [traffic.output_rate(ring) for ring in range(1, 6)]
        assert traffic.bottleneck_output_rate() == pytest.approx(max(rates))

    def test_offered_load_counts_hops(self):
        traffic = TrafficModel(RingTopology(depth=2, density=1), sampling_rate=1.0)
        # ring1: 1 node at 1 hop, ring2: 3 nodes at 2 hops -> 1 + 6 = 7 transmissions/s
        assert traffic.network_offered_load() == pytest.approx(7.0)

    def test_sampling_period_inverse_of_rate(self, traffic: TrafficModel):
        assert traffic.sampling_period == pytest.approx(100.0)

    def test_invalid_sampling_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficModel(RingTopology(depth=3, density=3), sampling_rate=0.0)

    def test_invalid_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficModel("not-a-topology", sampling_rate=0.1)  # type: ignore[arg-type]

    def test_describe_contains_rates(self, traffic: TrafficModel):
        description = traffic.describe()
        assert description["sampling_rate_hz"] == pytest.approx(0.01)
        assert description["sink_arrival_rate_hz"] == pytest.approx(0.01 * 200)
