"""Unit tests for the frame-size model."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.network.packets import PacketModel
from repro.network.radio import cc2420


class TestPacketModel:
    def test_data_frame_includes_header_and_phy_overhead(self):
        packets = PacketModel(payload_bytes=32, mac_header_bytes=9, phy_overhead_bytes=6)
        assert packets.data_frame_bytes == 47

    def test_strobe_and_ack_frames_include_phy_overhead(self):
        packets = PacketModel()
        assert packets.strobe_frame_bytes == packets.strobe_bytes + packets.phy_overhead_bytes
        assert packets.ack_frame_bytes == packets.ack_bytes + packets.phy_overhead_bytes

    def test_airtime_uses_radio_bitrate(self):
        packets = PacketModel()
        radio = cc2420()
        assert packets.data_airtime(radio) == pytest.approx(
            packets.data_frame_bytes * 8 / radio.bitrate
        )

    def test_strobe_period_exceeds_strobe_airtime(self):
        packets = PacketModel()
        radio = cc2420()
        assert packets.strobe_period(radio) > packets.strobe_airtime(radio)

    def test_hop_exchange_time_combines_data_and_ack(self):
        packets = PacketModel()
        radio = cc2420()
        expected = packets.data_airtime(radio) + radio.turnaround_time + packets.ack_airtime(radio)
        assert packets.hop_exchange_time(radio) == pytest.approx(expected)

    def test_with_payload_returns_modified_copy(self):
        base = PacketModel(payload_bytes=32)
        bigger = base.with_payload(96)
        assert bigger.payload_bytes == 96
        assert base.payload_bytes == 32

    def test_larger_payload_means_longer_airtime(self):
        radio = cc2420()
        assert PacketModel(payload_bytes=96).data_airtime(radio) > PacketModel(
            payload_bytes=16
        ).data_airtime(radio)

    def test_negative_size_is_rejected(self):
        with pytest.raises(ConfigurationError):
            PacketModel(payload_bytes=-1)

    def test_zero_sized_data_frame_is_rejected(self):
        with pytest.raises(ConfigurationError):
            PacketModel(payload_bytes=0, mac_header_bytes=0)

    def test_as_dict_round_trip(self):
        packets = PacketModel(payload_bytes=48)
        assert packets.as_dict()["payload_bytes"] == 48

    def test_control_airtime_positive(self):
        assert PacketModel().control_airtime(cc2420()) > 0
