"""Unit tests for the radio hardware model."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.network.radio import (
    RADIO_PRESETS,
    RadioMode,
    RadioModel,
    cc1100,
    cc2420,
    radio_by_name,
    tr1001,
)


class TestRadioModel:
    def test_cc2420_power_draws_are_in_the_expected_range(self):
        radio = cc2420()
        assert 0.04 < radio.power_rx < 0.07
        assert 0.04 < radio.power_tx < 0.07
        assert radio.power_sleep < 1e-3

    def test_power_lookup_matches_fields(self):
        radio = cc2420()
        assert radio.power(RadioMode.TX) == radio.power_tx
        assert radio.power(RadioMode.RX) == radio.power_rx
        assert radio.power(RadioMode.IDLE) == radio.power_idle
        assert radio.power(RadioMode.SLEEP) == radio.power_sleep

    def test_power_accepts_string_mode(self):
        radio = cc2420()
        assert radio.power("tx") == radio.power_tx

    def test_power_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            cc2420().power("warp-drive")

    def test_airtime_scales_linearly_with_size(self):
        radio = cc2420()
        assert radio.airtime_bytes(100) == pytest.approx(2 * radio.airtime_bytes(50))

    def test_airtime_bytes_matches_bitrate(self):
        radio = cc2420()
        assert radio.airtime_bytes(125) == pytest.approx(125 * 8 / radio.bitrate)

    def test_airtime_rejects_negative_size(self):
        with pytest.raises(ConfigurationError):
            cc2420().airtime_bits(-1)

    def test_tx_and_rx_energy_use_matching_powers(self):
        radio = cc2420()
        assert radio.tx_energy_bytes(50) == pytest.approx(radio.airtime_bytes(50) * radio.power_tx)
        assert radio.rx_energy_bytes(50) == pytest.approx(radio.airtime_bytes(50) * radio.power_rx)

    def test_energy_rejects_negative_duration(self):
        with pytest.raises(ConfigurationError):
            cc2420().energy(RadioMode.RX, -0.5)

    def test_always_on_power_is_idle_power(self):
        radio = cc2420()
        assert radio.always_on_power == radio.power_idle

    def test_with_overrides_changes_only_selected_fields(self):
        fast = cc2420().with_overrides(bitrate=500_000.0)
        assert fast.bitrate == 500_000.0
        assert fast.power_tx == cc2420().power_tx

    def test_as_dict_contains_all_numeric_fields(self):
        fields = cc2420().as_dict()
        assert set(fields) >= {"power_tx", "power_rx", "bitrate", "carrier_sense_time"}

    def test_negative_power_is_rejected(self):
        with pytest.raises(ConfigurationError):
            RadioModel(
                name="bad",
                power_tx=-1.0,
                power_rx=0.05,
                power_idle=0.05,
                power_sleep=0.0,
                bitrate=250_000.0,
            )

    def test_zero_bitrate_is_rejected(self):
        with pytest.raises(ConfigurationError):
            RadioModel(
                name="bad",
                power_tx=0.05,
                power_rx=0.05,
                power_idle=0.05,
                power_sleep=0.0,
                bitrate=0.0,
            )

    def test_sleep_power_above_active_power_is_rejected(self):
        with pytest.raises(ConfigurationError):
            RadioModel(
                name="bad",
                power_tx=0.05,
                power_rx=0.05,
                power_idle=0.05,
                power_sleep=0.1,
                bitrate=250_000.0,
            )


class TestPresets:
    def test_all_presets_are_constructible(self):
        for factory in (cc2420, cc1100, tr1001):
            radio = factory()
            assert radio.bitrate > 0

    def test_registry_matches_factories(self):
        assert set(RADIO_PRESETS) == {"cc2420", "cc1100", "tr1001"}

    def test_radio_by_name_is_case_insensitive(self):
        assert radio_by_name("CC2420").name == "CC2420"

    def test_radio_by_name_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            radio_by_name("nrf52840")

    def test_voltage_scales_power(self):
        low = cc2420(voltage=2.0)
        high = cc2420(voltage=3.0)
        assert high.power_rx == pytest.approx(1.5 * low.power_rx)

    def test_cc1100_is_slower_than_cc2420(self):
        assert cc1100().bitrate < cc2420().bitrate
