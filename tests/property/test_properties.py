"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.fairness import proportional_fairness_residual
from repro.core.parameters import Parameter, ParameterSpace
from repro.core.pareto import is_pareto_efficient, pareto_frontier
from repro.gametheory.game import BargainingGame
from repro.gametheory.nash import nash_bargaining_solution
from repro.network.topology import RingTopology
from repro.network.traffic import TrafficModel
from repro.protocols import XMACModel
from repro.scenario import Scenario
from repro.simulation.mac.base import next_occurrence

COMMON_SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

finite_floats = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)


class TestTrafficInvariants:
    @COMMON_SETTINGS
    @given(
        depth=st.integers(min_value=1, max_value=12),
        density=st.integers(min_value=1, max_value=20),
        rate=st.floats(min_value=1e-5, max_value=1.0),
    )
    def test_flow_conservation_everywhere(self, depth, density, rate):
        traffic = TrafficModel(RingTopology(depth=depth, density=density), rate)
        for ring in range(1, depth + 1):
            assert traffic.output_rate(ring) == pytest.approx(
                traffic.input_rate(ring) + rate
            )
            assert traffic.input_rate(ring) >= -1e-12
            assert traffic.background_rate(ring) >= 0.0

    @COMMON_SETTINGS
    @given(
        depth=st.integers(min_value=1, max_value=12),
        density=st.integers(min_value=1, max_value=20),
        rate=st.floats(min_value=1e-5, max_value=1.0),
    )
    def test_total_ring1_traffic_equals_sink_arrivals(self, depth, density, rate):
        topology = RingTopology(depth=depth, density=density)
        traffic = TrafficModel(topology, rate)
        ring1_total = traffic.output_rate(1) * topology.nodes_in_ring(1)
        assert ring1_total == pytest.approx(traffic.sink_arrival_rate(), rel=1e-9)


class TestParameterSpaceProperties:
    @COMMON_SETTINGS
    @given(
        lower=st.floats(min_value=-100, max_value=100, allow_nan=False),
        span=st.floats(min_value=1e-6, max_value=100),
        value=st.floats(min_value=-500, max_value=500, allow_nan=False),
    )
    def test_clip_always_lands_inside(self, lower, span, value):
        parameter = Parameter("x", lower, lower + span)
        clipped = parameter.clip(value)
        assert parameter.contains(clipped)

    @COMMON_SETTINGS
    @given(
        values=st.lists(finite_floats, min_size=1, max_size=4),
    )
    def test_dict_array_round_trip(self, values):
        space = ParameterSpace(
            [Parameter(f"p{i}", 0.0, 2000.0) for i in range(len(values))]
        )
        as_dict = {f"p{i}": v for i, v in enumerate(values)}
        assert space.to_dict(space.to_array(as_dict)) == pytest.approx(as_dict)

    @COMMON_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000), count=st.integers(1, 50))
    def test_random_points_always_inside_box(self, seed, count):
        space = ParameterSpace([Parameter("a", 0.5, 1.5), Parameter("b", -3.0, -1.0)])
        points = space.random_points(count, seed=seed)
        for point in points:
            assert space.contains(point)


class TestParetoProperties:
    @COMMON_SETTINGS
    @given(
        points=st.lists(
            st.tuples(finite_floats, finite_floats), min_size=1, max_size=60
        )
    )
    def test_frontier_points_are_mutually_nondominating(self, points):
        frontier = pareto_frontier(points)
        for i in range(frontier.shape[0]):
            for j in range(frontier.shape[0]):
                if i == j:
                    continue
                dominates = np.all(frontier[j] <= frontier[i]) and np.any(
                    frontier[j] < frontier[i]
                )
                assert not dominates

    @COMMON_SETTINGS
    @given(
        points=st.lists(
            st.tuples(finite_floats, finite_floats), min_size=1, max_size=60
        )
    )
    def test_every_point_is_dominated_by_some_frontier_point(self, points):
        frontier = pareto_frontier(points)
        for point in points:
            assert np.any(
                np.all(frontier <= np.asarray(point) + 1e-12, axis=1)
            )

    @COMMON_SETTINGS
    @given(
        points=st.lists(
            st.tuples(finite_floats, finite_floats), min_size=1, max_size=40
        )
    )
    def test_mask_is_permutation_invariant(self, points):
        mask = is_pareto_efficient(points)
        reversed_mask = is_pareto_efficient(list(reversed(points)))
        assert list(mask) == list(reversed(list(reversed_mask)))


class TestNashSolutionProperties:
    @COMMON_SETTINGS
    @given(
        payoffs=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            ),
            min_size=2,
            max_size=50,
        )
    )
    def test_nash_point_is_individually_rational_and_efficient(self, payoffs):
        game = BargainingGame(payoffs, disagreement=(0.0, 0.0))
        point = nash_bargaining_solution(game)
        assert point.gains[0] >= -1e-12 and point.gains[1] >= -1e-12
        # Exact (tolerance-0) domination: the solver's product argmax with
        # min-gain/total-gain tie-breaks is Pareto-efficient under exact
        # comparison.  An epsilon-tolerant check would be inconsistent with
        # Nash-product maximization when a player's gain is below epsilon,
        # e.g. (1e-9, 1) maximizes the product yet is "1e-9-dominated" by
        # (0, 2).
        assert game.is_pareto_efficient(point.index, tolerance=0.0)

    @COMMON_SETTINGS
    @given(
        payoffs=st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
                st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
            ),
            min_size=2,
            max_size=30,
        ),
        scale1=st.floats(min_value=0.1, max_value=10.0),
        scale2=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_nash_solution_is_scale_invariant(self, payoffs, scale1, scale2):
        game = BargainingGame(payoffs, disagreement=(0.0, 0.0))
        original = nash_bargaining_solution(game)
        scaled = nash_bargaining_solution(game.rescaled((scale1, scale2), (0.0, 0.0)))
        assert scaled.payoff[0] == pytest.approx(original.payoff[0] * scale1, rel=1e-6)
        assert scaled.payoff[1] == pytest.approx(original.payoff[1] * scale2, rel=1e-6)


class TestFairnessProperties:
    @COMMON_SETTINGS
    @given(
        best_energy=st.floats(min_value=0.001, max_value=0.01),
        worst_energy=st.floats(min_value=0.02, max_value=0.1),
        best_delay=st.floats(min_value=0.01, max_value=0.5),
        worst_delay=st.floats(min_value=1.0, max_value=10.0),
        share=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_equal_shares_always_have_zero_residual(
        self, best_energy, worst_energy, best_delay, worst_delay, share
    ):
        energy_star = worst_energy + share * (best_energy - worst_energy)
        delay_star = worst_delay + share * (best_delay - worst_delay)
        residual = proportional_fairness_residual(
            energy_star, delay_star, best_energy, worst_energy, best_delay, worst_delay
        )
        assert residual == pytest.approx(0.0, abs=1e-9)


class TestSchedulingProperties:
    @COMMON_SETTINGS
    @given(
        now=st.floats(min_value=0.0, max_value=1e4),
        period=st.floats(min_value=1e-3, max_value=100.0),
        offset=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_next_occurrence_is_on_schedule_and_not_in_the_past(self, now, period, offset):
        occurrence = next_occurrence(now, period, offset)
        assert occurrence >= now - 1e-9
        cycles = (occurrence - offset) / period
        assert cycles == pytest.approx(round(cycles), abs=1e-6)
        if now >= offset:
            # Once the schedule has started, the wait never exceeds one period.
            assert occurrence - now <= period * (1 + 1e-6)
        else:
            # Before the schedule starts, the first occurrence is the offset.
            assert occurrence == pytest.approx(offset)


class TestProtocolModelProperties:
    @COMMON_SETTINGS
    @given(wakeup=st.floats(min_value=0.02, max_value=4.0))
    def test_xmac_metrics_always_finite_and_positive(self, wakeup):
        scenario = Scenario(
            topology=RingTopology(depth=4, density=6), sampling_rate=1.0 / 600.0
        )
        model = XMACModel(scenario)
        energy = model.system_energy({"wakeup_interval": wakeup})
        delay = model.system_latency({"wakeup_interval": wakeup})
        assert np.isfinite(energy) and energy > 0
        assert np.isfinite(delay) and delay > 0
        assert energy <= scenario.radio.always_on_power * 1.05
