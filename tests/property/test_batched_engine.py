"""Property-based invariants of the array-batched replication engine.

Four families, per the batched-engine contract:

* conservation — delivered/dropped packets never exceed the offered load;
* accounting — per-state energy accumulators (RX/TX seconds, periodic
  rows, channel counters) are non-negative under direct kernel driving;
* determinism — campaign artifacts are byte-identical across worker
  counts, and scalar/batched runs are bit-identical at fuzzed seeds;
* edges — R=0, R=1 and sub-duty-cycle horizons for the DMAC and SCP-MAC
  kernels added by the engine-completion PR.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.network.deployment import ring_deployment
from repro.network.topology import RingTopology
from repro.protocols.registry import create_protocol
from repro.scenario import Scenario
from repro.simulation import SimulationConfig, simulate_protocol
from repro.simulation.batched import batch_kernel_for, simulate_protocol_batched
from repro.simulation.batched.engine import ReplicationState
from repro.validation.campaign import CampaignSpec, run_campaign

PROTOCOL_PARAMS = {
    "xmac": {"wakeup_interval": 0.3},
    "dmac": {"frame_length": 1.0},
    "lmac": {"slot_length": 0.02, "slot_count": 9.0},
    "scpmac": {"poll_interval": 0.3},
}
PROTOCOLS = tuple(sorted(PROTOCOL_PARAMS))
NEW_KERNEL_PROTOCOLS = ("dmac", "scpmac")

SIM_SETTINGS = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _model(protocol: str, period: float = 30.0):
    scenario = Scenario(
        topology=RingTopology(depth=3, density=4), sampling_rate=1.0 / period
    )
    return create_protocol(protocol, scenario)


def _batched(protocol, seed, horizon, period=30.0):
    model = _model(protocol, period)
    config = SimulationConfig(
        horizon=horizon, seed=seed, engine="batched", strict=True
    )
    return simulate_protocol(model, PROTOCOL_PARAMS[protocol], config)


class TestPacketConservation:
    @SIM_SETTINGS
    @given(
        protocol=st.sampled_from(PROTOCOLS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        horizon=st.sampled_from((40.0, 90.0, 150.0)),
        period=st.sampled_from((15.0, 30.0, 60.0)),
    )
    def test_delivered_and_dropped_never_exceed_offered(
        self, protocol, seed, horizon, period
    ):
        result = _batched(protocol, seed, horizon, period)
        assert result.engine == "batched"
        assert 0 <= result.delivered_packets <= result.generated_packets
        assert 0 <= result.dropped_packets
        # In-flight packets may remain queued at the horizon, so the two
        # terminal counters bound the offered load from below, never above.
        assert result.delivered_packets + result.dropped_packets <= result.generated_packets
        assert 0.0 <= result.delivery_ratio <= 1.0


class TestEnergyAccounting:
    @SIM_SETTINGS
    @given(
        protocol=st.sampled_from(PROTOCOLS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        hops=st.integers(min_value=1, max_value=40),
    )
    def test_direct_kernel_driving_keeps_accumulators_non_negative(
        self, protocol, seed, hops
    ):
        # Drive the kernel's hop planner directly against a hand-built
        # ReplicationState — the engine-independent accounting invariant.
        model = _model(protocol)
        kernel_class = batch_kernel_for(model)
        assert kernel_class is not None, f"{protocol} lost its batch kernel"
        kernel = kernel_class(model, PROTOCOL_PARAMS[protocol])
        rng = np.random.default_rng(seed)
        deployment = ring_deployment(depth=3, density=4, seed=seed)
        node_ids = list(deployment.node_ids)
        index_of = {node_id: i for i, node_id in enumerate(node_ids)}
        rings = [deployment.ring_of[node_id] for node_id in node_ids]
        parents = [deployment.parent_of(node_id) for node_id in node_ids]
        is_sink = [p is None and r == 0 for p, r in zip(parents, rings)]
        phases = kernel.assign_phases(rng, len(node_ids), rings, is_sink)
        interference = []
        overhearers = []
        for index, node_id in enumerate(node_ids):
            neighbours = deployment.neighbours_of(node_id)
            interference.append(
                (index,) + tuple(index_of[n] for n in neighbours)
            )
            if is_sink[index]:
                overhearers.append(())
            else:
                overhearers.append(
                    tuple(
                        index_of[n]
                        for n in neighbours
                        if n not in (parents[index], 0)
                    )
                )
        state = ReplicationState(rng, phases, rings, interference, overhearers)
        plan = kernel.make_hop_planner(state)
        senders = [i for i in range(len(node_ids)) if not is_sink[i]]
        now = 0.0
        for hop in range(hops):
            sender = senders[hop % len(senders)]
            now = plan(sender, index_of[parents[sender]], now)
        assert state.transmissions == hops
        assert state.deferrals >= 0
        assert all(value >= 0.0 for value in state.rx)
        assert all(value >= 0.0 for value in state.tx)
        assert all(value >= 0.0 for value in state.busy_until)
        for is_tx, seconds in kernel.periodic_seconds(150.0):
            assert isinstance(is_tx, bool)
            assert seconds >= 0.0

    @SIM_SETTINGS
    @given(
        protocol=st.sampled_from(PROTOCOLS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_node_powers_at_least_sleep_floor(self, protocol, seed):
        result = _batched(protocol, seed, horizon=90.0)
        model = _model(protocol)
        sleep = model.scenario.radio.power_sleep
        # Active states cost at least as much as sleeping, so average power
        # can never fall below the all-sleep floor (nor go negative).
        for power in result.node_power.values():
            assert power >= sleep > 0.0


class TestDeterminism:
    @SIM_SETTINGS
    @given(
        protocol=st.sampled_from(PROTOCOLS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        horizon=st.sampled_from((40.0, 90.0, 150.0)),
    )
    def test_scalar_and_batched_bit_identical(self, protocol, seed, horizon):
        model = _model(protocol)
        params = PROTOCOL_PARAMS[protocol]
        scalar = simulate_protocol(
            model, params, SimulationConfig(horizon=horizon, seed=seed)
        )
        batched = simulate_protocol(
            model,
            params,
            SimulationConfig(
                horizon=horizon, seed=seed, engine="batched", strict=True
            ),
        )
        assert scalar.engine == "scalar"
        assert batched.engine == "batched"
        assert scalar.node_power == batched.node_power
        assert scalar.ring_power == batched.ring_power
        assert scalar.delays_by_ring == batched.delays_by_ring
        assert scalar.as_dict() == batched.as_dict()

    @pytest.mark.slow
    def test_campaign_bytes_identical_across_worker_counts(self):
        from repro.runtime.batch import build_runner

        spec = CampaignSpec(
            scenarios=("high-rate",),
            protocols=NEW_KERNEL_PROTOCOLS,
            replications=2,
            horizon=150.0,
            grid_points_per_dimension=12,
            sim_engine="batched",
        )
        artifacts = []
        for workers in (1, 2):
            runner = build_runner(workers=workers, use_cache=False)
            result = run_campaign(spec, runner=runner)
            artifacts.append(json.dumps(result.as_dict(), sort_keys=True))
        assert artifacts[0] == artifacts[1]


class TestNewKernelEdges:
    @pytest.mark.parametrize("protocol", NEW_KERNEL_PROTOCOLS)
    def test_zero_replications_raise(self, protocol):
        with pytest.raises(SimulationError, match="at least one replication"):
            simulate_protocol_batched(
                _model(protocol), PROTOCOL_PARAMS[protocol], []
            )

    @pytest.mark.parametrize("protocol", NEW_KERNEL_PROTOCOLS)
    def test_single_replication_matches_scalar(self, protocol):
        model = _model(protocol)
        params = PROTOCOL_PARAMS[protocol]
        config = SimulationConfig(
            horizon=150.0, seed=5, engine="batched", strict=True
        )
        (batched,) = simulate_protocol_batched(model, params, [config])
        scalar = simulate_protocol(
            model, params, SimulationConfig(horizon=150.0, seed=5)
        )
        assert batched.engine == "batched"
        assert scalar.as_dict() == batched.as_dict()

    @pytest.mark.parametrize("protocol", NEW_KERNEL_PROTOCOLS)
    def test_sub_duty_cycle_horizon(self, protocol):
        # Shorter than one frame (DMAC, 1 s) / poll interval (SCP-MAC,
        # 300 ms): zero periodic events fit and (with a quiet traffic
        # period) no packet is generated, so every node idles at exactly
        # the sleep power — on both engines.
        model = _model(protocol, period=1.0e7)
        params = PROTOCOL_PARAMS[protocol]
        sleep = model.scenario.radio.power_sleep
        results = []
        for engine, strict in (("scalar", False), ("batched", True)):
            result = simulate_protocol(
                model,
                params,
                SimulationConfig(
                    horizon=0.05, seed=3, engine=engine, strict=strict
                ),
            )
            assert result.generated_packets == 0
            assert set(result.node_power.values()) == {sleep}
            results.append(result)
        assert results[0].node_power == results[1].node_power
