"""Property-based invariants of the adaptive coarse-to-fine solver.

Three families, per the adaptive-solver contract
(:mod:`repro.optimization.adaptive`):

* argmax identity — across fuzzed scenarios, protocols, requirement
  points, odd and even grid sizes, and knob settings in the supported
  range, the adaptive solver returns the exhaustive scan's exact
  ``SolverResult`` (same point, value, tie-break, nominal evaluation
  count) for the energy (P1) and delay (P2) problems;
* infeasible identity — games that are infeasible everywhere report the
  identical least-violation answer through both methods;
* honest accounting — the nominal ``evaluations`` equals the full-grid
  total while the volatile work counters never exceed it.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.requirements import ApplicationRequirements
from repro.core.problems import (
    DelayMinimizationProblem,
    EnergyMinimizationProblem,
)
from repro.network.topology import RingTopology
from repro.optimization import adaptive_grid_search, batched, grid_search
from repro.protocols.registry import create_protocol
from repro.scenario import Scenario

PROTOCOLS = ("dmac", "lmac", "scpmac", "xmac")

COMMON_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: Every field of SolverResult that must match bit-for-bit (``work`` is
#: volatile and expected to differ).
_COMPARED_FIELDS = (
    "x",
    "value",
    "feasible",
    "method",
    "evaluations",
    "message",
    "constraint_violation",
)

#: Grid resolutions with odd sizes over-represented: rounding coarse
#: levels onto odd fine grids is where an off-by-one would hide.
GRID_SIZES = (5, 9, 17, 33, 45, 60, 61)


def _problem(protocol, depth, density, period, energy_budget, max_delay, kind):
    scenario = Scenario(
        topology=RingTopology(depth=depth, density=density),
        sampling_rate=1.0 / period,
    )
    model = create_protocol(protocol, scenario)
    requirements = ApplicationRequirements(
        energy_budget=energy_budget,
        max_delay=max_delay,
        sampling_rate=scenario.sampling_rate,
    )
    if kind == "energy":
        problem = EnergyMinimizationProblem(model, requirements)
        objective = batched(model.system_energy, model.energy_many)
    else:
        problem = DelayMinimizationProblem(model, requirements)
        objective = batched(model.system_latency, model.latency_many)
    return objective, problem.space, problem.constraints()


def _assert_identical(exhaustive, adaptive):
    for field in _COMPARED_FIELDS:
        left = getattr(exhaustive, field)
        right = getattr(adaptive, field)
        if isinstance(left, np.ndarray):
            assert np.array_equal(left, right), (
                f"{field}: {[float.hex(float(v)) for v in left]} != "
                f"{[float.hex(float(v)) for v in right]}"
            )
        else:
            assert left == right, f"{field}: {left!r} != {right!r}"


class TestArgmaxIdentity:
    @COMMON_SETTINGS
    @given(
        protocol=st.sampled_from(PROTOCOLS),
        kind=st.sampled_from(("energy", "delay")),
        depth=st.integers(min_value=2, max_value=5),
        density=st.integers(min_value=2, max_value=6),
        period=st.sampled_from((15.0, 60.0, 300.0, 600.0)),
        energy_budget=st.floats(min_value=0.005, max_value=0.2),
        max_delay=st.floats(min_value=0.2, max_value=10.0),
        grid_n=st.sampled_from(GRID_SIZES),
    )
    def test_adaptive_matches_exhaustive(
        self, protocol, kind, depth, density, period, energy_budget, max_delay, grid_n
    ):
        objective, space, constraints = _problem(
            protocol, depth, density, period, energy_budget, max_delay, kind
        )
        exhaustive = grid_search(
            objective, space, constraints, points_per_dimension=grid_n
        )
        adaptive = adaptive_grid_search(
            objective, space, constraints, points_per_dimension=grid_n
        )
        _assert_identical(exhaustive, adaptive)

    @COMMON_SETTINGS
    @given(
        protocol=st.sampled_from(PROTOCOLS),
        grid_n=st.sampled_from((17, 33, 61)),
        coarse_points=st.integers(min_value=9, max_value=15),
        refine_rounds=st.integers(min_value=1, max_value=5),
        top_k=st.integers(min_value=2, max_value=6),
    )
    def test_identity_holds_across_knob_settings(
        self, protocol, grid_n, coarse_points, refine_rounds, top_k
    ):
        objective, space, constraints = _problem(
            protocol, 3, 4, 300.0, 0.06, 6.0, "energy"
        )
        exhaustive = grid_search(
            objective, space, constraints, points_per_dimension=grid_n
        )
        adaptive = adaptive_grid_search(
            objective,
            space,
            constraints,
            points_per_dimension=grid_n,
            coarse_points=coarse_points,
            refine_rounds=refine_rounds,
            top_k=top_k,
        )
        _assert_identical(exhaustive, adaptive)


class TestInfeasibleIdentity:
    @COMMON_SETTINGS
    @given(
        protocol=st.sampled_from(PROTOCOLS),
        kind=st.sampled_from(("energy", "delay")),
        grid_n=st.sampled_from(GRID_SIZES),
        max_delay=st.floats(min_value=1e-9, max_value=1e-5),
    )
    def test_infeasible_everywhere_reports_identically(
        self, protocol, kind, grid_n, max_delay
    ):
        # A vanishing latency bound no duty cycle can meet (the P1
        # constraint) and an energy budget below the sleep floor (the P2
        # constraint): both methods must agree the game is infeasible *and*
        # return the same least-violation point.
        objective, space, constraints = _problem(
            protocol, 3, 4, 300.0, 1e-9, max_delay, kind
        )
        exhaustive = grid_search(
            objective, space, constraints, points_per_dimension=grid_n
        )
        adaptive = adaptive_grid_search(
            objective, space, constraints, points_per_dimension=grid_n
        )
        assert not exhaustive.feasible
        assert not adaptive.feasible
        _assert_identical(exhaustive, adaptive)


class TestWorkAccounting:
    @COMMON_SETTINGS
    @given(
        protocol=st.sampled_from(PROTOCOLS),
        grid_n=st.sampled_from((17, 45, 60, 61)),
    )
    def test_nominal_evaluations_bound_real_work(self, protocol, grid_n):
        objective, space, constraints = _problem(
            protocol, 3, 4, 300.0, 0.06, 6.0, "energy"
        )
        result = adaptive_grid_search(
            objective, space, constraints, points_per_dimension=grid_n
        )
        assert result.evaluations == grid_n ** space.dimension
        work = result.work
        assert work is not None
        actual = work["coarse_evaluations"] + work["refined_evaluations"]
        assert 0 < actual <= result.evaluations
        assert work["cells_pruned"] >= 0
        # The serialized form must be indistinguishable from exhaustive.
        assert "work" not in result.as_dict()
