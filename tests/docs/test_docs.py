"""Documentation health: links, doctests, generated-file freshness.

These tests run the same checks as CI's docs job (``tools/check_docs.py``)
so a broken link or stale generated page fails locally first, and they pin
the checker's own behaviour on synthetic good/bad documents.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.scenarios import scenario_presets
from repro.scenarios.docs import GENERATED_MARKER, render_scenarios_markdown

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs = _load_checker()


class TestRepositoryDocs:
    def test_expected_files_are_covered(self):
        names = {path.name for path in check_docs.documentation_files(REPO_ROOT)}
        assert {
            "README.md",
            "architecture.md",
            "paper_map.md",
            "scenarios.md",
            "simulation.md",
            "validation.md",
        } <= names

    def test_all_docs_clean(self):
        problems = check_docs.run_checks(REPO_ROOT)
        assert not problems, "\n".join(problems)

    def test_scenarios_md_is_fresh(self):
        on_disk = (REPO_ROOT / "docs" / "scenarios.md").read_text(encoding="utf-8")
        assert on_disk == render_scenarios_markdown(), (
            "docs/scenarios.md is stale; regenerate with "
            "`PYTHONPATH=src python -m repro.scenarios.docs`"
        )

    def test_scenarios_md_documents_every_preset(self):
        on_disk = (REPO_ROOT / "docs" / "scenarios.md").read_text(encoding="utf-8")
        assert GENERATED_MARKER in on_disk
        for preset in scenario_presets():
            assert f"## {preset.name}" in on_disk
            assert preset.title in on_disk

    def test_validation_md_is_fresh(self):
        from repro.validation.artifacts import load_campaign_dict
        from repro.validation.report import render_validation_markdown

        payload = load_campaign_dict(REPO_ROOT / "docs" / "validation_campaign.json")
        on_disk = (REPO_ROOT / "docs" / "validation.md").read_text(encoding="utf-8")
        assert on_disk == render_validation_markdown(payload), (
            "docs/validation.md is stale; regenerate with "
            "`PYTHONPATH=src python -m repro.validation.report`"
        )

    def test_generated_checker_covers_repo_pages(self):
        assert check_docs.check_generated(REPO_ROOT) == []


class TestCheckerBehaviour:
    def _write(self, tmp_path: Path, name: str, content: str) -> Path:
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
        return path

    def test_broken_relative_link_detected(self, tmp_path):
        page = self._write(tmp_path, "docs/page.md", "see [x](missing.md)\n")
        problems = check_docs.check_links(page, tmp_path)
        assert len(problems) == 1 and "broken link" in problems[0]

    def test_valid_link_and_anchor_accepted(self, tmp_path):
        self._write(tmp_path, "docs/other.md", "# A Heading\n")
        page = self._write(
            tmp_path,
            "docs/page.md",
            "# My Page\n[ok](other.md#a-heading) and [self](#my-page)\n",
        )
        assert check_docs.check_links(page, tmp_path) == []

    def test_broken_anchor_detected(self, tmp_path):
        self._write(tmp_path, "docs/other.md", "# A Heading\n")
        page = self._write(tmp_path, "docs/page.md", "[bad](other.md#nope)\n")
        problems = check_docs.check_links(page, tmp_path)
        assert len(problems) == 1 and "broken anchor" in problems[0]

    def test_external_links_skipped(self, tmp_path):
        page = self._write(
            tmp_path, "docs/page.md", "[x](https://example.com/missing)\n"
        )
        assert check_docs.check_links(page, tmp_path) == []

    def test_passing_doctest_block(self, tmp_path):
        page = self._write(
            tmp_path, "docs/page.md", "```python\n>>> 1 + 1\n2\n```\n"
        )
        assert check_docs.check_doctests(page, tmp_path) == []

    def test_failing_doctest_block_detected(self, tmp_path):
        page = self._write(
            tmp_path, "docs/page.md", "```python\n>>> 1 + 1\n3\n```\n"
        )
        problems = check_docs.check_doctests(page, tmp_path)
        assert len(problems) == 1 and "doctest failed" in problems[0]

    def test_plain_code_blocks_not_executed(self, tmp_path):
        page = self._write(
            tmp_path,
            "docs/page.md",
            "```python\nraise RuntimeError('not a doctest')\n```\n"
            "```bash\n>>> not python\n```\n",
        )
        assert check_docs.check_doctests(page, tmp_path) == []

    def test_generated_check_skips_synthetic_trees(self, tmp_path):
        # Temporary doc trees (like the ones above) carry no generated
        # pages; the freshness pass must not reach outside them.
        self._write(tmp_path, "docs/page.md", "# fine\n")
        assert check_docs.check_generated(tmp_path) == []

    def test_stale_validation_page_detected(self, tmp_path):
        import shutil

        root = check_docs.repo_root()
        (tmp_path / "docs").mkdir()
        shutil.copy(
            root / "docs" / "validation_campaign.json",
            tmp_path / "docs" / "validation_campaign.json",
        )
        self._write(tmp_path, "docs/validation.md", "# stale\n")
        problems = check_docs.check_generated(tmp_path)
        assert len(problems) == 1 and "not regenerable" in problems[0]

    def test_validation_page_without_artifact_detected(self, tmp_path):
        self._write(tmp_path, "docs/validation.md", "# orphan\n")
        problems = check_docs.check_generated(tmp_path)
        assert len(problems) == 1 and "missing" in problems[0]

    def test_corrupt_artifact_reported_not_raised(self, tmp_path):
        self._write(tmp_path, "docs/validation.md", "# page\n")
        self._write(tmp_path, "docs/validation_campaign.json", "{not json")
        problems = check_docs.check_generated(tmp_path)
        assert len(problems) == 1 and "unreadable campaign artifact" in problems[0]

    def test_github_slugging_matches_readme_style(self):
        slug = check_docs.github_slug("Parallel runtime: `--workers` and `--no-cache`")
        assert slug == "parallel-runtime---workers-and---no-cache"


@pytest.mark.parametrize("flag", ["--check"])
def test_scenarios_docs_check_cli(flag, capsys):
    """``python -m repro.scenarios.docs --check`` agrees with the tests."""
    from repro.scenarios import docs as scenario_docs

    assert scenario_docs.main([flag]) == 0
    assert "up to date" in capsys.readouterr().out
