"""Unit tests for application requirements."""

from __future__ import annotations

import pytest

from repro.core.requirements import ApplicationRequirements
from repro.exceptions import ConfigurationError


class TestApplicationRequirements:
    def test_basic_properties(self):
        requirements = ApplicationRequirements(energy_budget=0.05, max_delay=2.0, sampling_rate=0.01)
        assert requirements.sampling_period == 100.0
        assert requirements.max_delay_ms == 2000.0

    def test_with_energy_budget_returns_copy(self):
        base = ApplicationRequirements(energy_budget=0.05, max_delay=2.0)
        changed = base.with_energy_budget(0.01)
        assert changed.energy_budget == 0.01
        assert base.energy_budget == 0.05
        assert changed.max_delay == base.max_delay

    def test_with_max_delay_returns_copy(self):
        base = ApplicationRequirements(energy_budget=0.05, max_delay=2.0)
        changed = base.with_max_delay(5.0)
        assert changed.max_delay == 5.0
        assert base.max_delay == 2.0

    def test_satisfied_by(self):
        requirements = ApplicationRequirements(energy_budget=0.05, max_delay=2.0)
        assert requirements.satisfied_by(0.04, 1.5)
        assert not requirements.satisfied_by(0.06, 1.5)
        assert not requirements.satisfied_by(0.04, 2.5)

    def test_satisfied_by_boundary_with_tolerance(self):
        requirements = ApplicationRequirements(energy_budget=0.05, max_delay=2.0)
        assert requirements.satisfied_by(0.05, 2.0)

    def test_describe_round_trip(self):
        requirements = ApplicationRequirements(energy_budget=0.02, max_delay=3.0, sampling_rate=0.5)
        described = requirements.describe()
        assert described["energy_budget_j_per_s"] == 0.02
        assert described["max_delay_s"] == 3.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"energy_budget": 0.0, "max_delay": 1.0},
            {"energy_budget": 0.1, "max_delay": 0.0},
            {"energy_budget": -0.1, "max_delay": 1.0},
            {"energy_budget": 0.1, "max_delay": 1.0, "sampling_rate": -1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ApplicationRequirements(**kwargs)
