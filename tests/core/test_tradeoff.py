"""Tests for the high-level EnergyDelayGame API."""

from __future__ import annotations

import pytest

from repro.core.fairness import is_proportionally_fair
from repro.core.requirements import ApplicationRequirements
from repro.core.tradeoff import EnergyDelayGame
from repro.exceptions import ConfigurationError

GAME_OPTIONS = {"grid_points_per_dimension": 50, "random_starts": 2}


@pytest.fixture
def xmac_game(xmac, requirements) -> EnergyDelayGame:
    return EnergyDelayGame(xmac, requirements, **GAME_OPTIONS)


class TestEnergyDelayGame:
    def test_solution_contains_all_paper_quantities(self, xmac_game):
        solution = xmac_game.solve()
        assert solution.energy_best <= solution.energy_star <= solution.energy_worst
        assert solution.delay_best <= solution.delay_star <= solution.delay_worst
        assert solution.is_fully_feasible

    def test_agreement_is_proportionally_fair(self, xmac_game):
        solution = xmac_game.solve()
        assert is_proportionally_fair(
            solution.energy_star,
            solution.delay_star,
            solution.energy_best,
            solution.energy_worst,
            solution.delay_best,
            solution.delay_worst,
            tolerance=0.1,
        )

    def test_agreement_respects_requirements(self, xmac_game, requirements):
        solution = xmac_game.solve()
        assert solution.energy_star <= requirements.energy_budget * 1.001
        assert solution.delay_star <= requirements.max_delay * 1.001

    def test_sweep_max_delay_moves_agreement_toward_energy_player(self, xmac, requirements):
        game = EnergyDelayGame(xmac, requirements, **GAME_OPTIONS)
        solutions = game.sweep_max_delay([0.8, 2.0, 4.0])
        energies = [s.energy_star for s in solutions]
        assert energies[0] >= energies[1] >= energies[2]

    def test_sweep_energy_budget_moves_agreement_toward_delay_player(self, xmac, requirements):
        game = EnergyDelayGame(xmac, requirements, **GAME_OPTIONS)
        solutions = game.sweep_energy_budget([0.002, 0.01, 0.05])
        delays = [s.delay_star for s in solutions]
        assert delays[0] >= delays[1] >= delays[2]

    def test_frontier_is_monotone_tradeoff(self, xmac_game):
        frontier = xmac_game.frontier(samples_per_dimension=60)
        assert len(frontier) >= 5
        energies = [p.energy for p in frontier]
        delays = [p.delay for p in frontier]
        assert energies == sorted(energies)
        assert delays == sorted(delays, reverse=True)

    def test_frontier_respecting_requirements_is_subset(self, xmac, requirements):
        tight = ApplicationRequirements(
            energy_budget=0.005, max_delay=1.5, sampling_rate=requirements.sampling_rate
        )
        game = EnergyDelayGame(xmac, tight, **GAME_OPTIONS)
        restricted = game.frontier(samples_per_dimension=60, respect_requirements=True)
        for point in restricted:
            assert point.energy <= tight.energy_budget * 1.001
            assert point.delay <= tight.max_delay * 1.001

    def test_summary_is_flat_and_complete(self, xmac_game):
        summary = xmac_game.summary()
        assert summary["protocol"] == "X-MAC"
        assert "E_star" in summary and "scenario" in summary

    def test_invalid_inputs_rejected(self, xmac, requirements):
        with pytest.raises(ConfigurationError):
            EnergyDelayGame("nope", requirements)  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            EnergyDelayGame(xmac, "nope")  # type: ignore[arg-type]

    def test_all_protocols_solve_under_loose_requirements(self, all_protocols, requirements):
        for model in all_protocols.values():
            solution = EnergyDelayGame(model, requirements, **GAME_OPTIONS).solve()
            assert solution.is_fully_feasible
            assert solution.energy_star > 0
            assert solution.delay_star > 0
