"""Unit tests for the core result dataclasses."""

from __future__ import annotations

import pytest

from repro.core.results import BargainingOutcome, GameSolution, OptimizationOutcome, TradeoffPoint
from repro.exceptions import ConfigurationError


def _point(energy: float, delay: float) -> TradeoffPoint:
    return TradeoffPoint(parameters={"x": 1.0}, energy=energy, delay=delay)


def _solution() -> GameSolution:
    energy_optimum = OptimizationOutcome(
        problem="P1-energy", point=_point(0.01, 4.0), feasible=True, solver="grid"
    )
    delay_optimum = OptimizationOutcome(
        problem="P2-delay", point=_point(0.05, 1.0), feasible=True, solver="grid"
    )
    bargaining = BargainingOutcome(
        point=_point(0.03, 2.0),
        nash_product=(0.05 - 0.03) * (4.0 - 2.0),
        disagreement_energy=0.05,
        disagreement_delay=4.0,
        energy_gain=0.02,
        delay_gain=2.0,
        fairness_residual=0.01,
    )
    return GameSolution(
        protocol="X-MAC",
        energy_budget=0.06,
        max_delay=6.0,
        energy_optimum=energy_optimum,
        delay_optimum=delay_optimum,
        bargaining=bargaining,
    )


class TestTradeoffPoint:
    def test_delay_ms_conversion(self):
        assert _point(0.01, 1.5).delay_ms == pytest.approx(1500.0)

    def test_negative_metrics_rejected(self):
        with pytest.raises(ConfigurationError):
            TradeoffPoint(parameters={}, energy=-1.0, delay=1.0)

    def test_as_dict_contains_parameters(self):
        as_dict = _point(0.01, 1.0).as_dict()
        assert as_dict["parameters"] == {"x": 1.0}
        assert as_dict["delay_ms"] == 1000.0


class TestGameSolution:
    def test_paper_quantities_are_exposed(self):
        solution = _solution()
        assert solution.energy_best == 0.01
        assert solution.delay_worst == 4.0
        assert solution.energy_worst == 0.05
        assert solution.delay_best == 1.0
        assert solution.energy_star == 0.03
        assert solution.delay_star == 2.0

    def test_star_point_lies_between_corners(self):
        solution = _solution()
        assert solution.energy_best <= solution.energy_star <= solution.energy_worst
        assert solution.delay_best <= solution.delay_star <= solution.delay_worst

    def test_fully_feasible_flag(self):
        assert _solution().is_fully_feasible

    def test_as_dict_has_flat_paper_keys(self):
        as_dict = _solution().as_dict()
        for key in ("E_best", "L_worst", "E_worst", "L_best", "E_star", "L_star"):
            assert key in as_dict
        assert as_dict["L_star_ms"] == pytest.approx(2000.0)

    def test_optimization_outcome_as_dict(self):
        outcome = _solution().energy_optimum
        as_dict = outcome.as_dict()
        assert as_dict["problem"] == "P1-energy"
        assert as_dict["feasible"] is True

    def test_bargaining_outcome_as_dict(self):
        as_dict = _solution().bargaining.as_dict()
        assert as_dict["nash_product"] == pytest.approx(0.04)
        assert as_dict["disagreement_energy"] == 0.05
