"""Unit tests for parameters and parameter spaces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parameters import Parameter, ParameterSpace
from repro.exceptions import ConfigurationError


@pytest.fixture
def space() -> ParameterSpace:
    return ParameterSpace(
        [
            Parameter("alpha", 0.0, 1.0, unit="s"),
            Parameter("beta", 10.0, 20.0, unit="slots", integer=True),
        ]
    )


class TestParameter:
    def test_span_and_midpoint(self):
        parameter = Parameter("x", 2.0, 6.0)
        assert parameter.span == 4.0
        assert parameter.midpoint == 4.0

    def test_contains_and_clip(self):
        parameter = Parameter("x", 0.0, 1.0)
        assert parameter.contains(0.5)
        assert not parameter.contains(1.5)
        assert parameter.clip(1.5) == 1.0
        assert parameter.clip(-1.0) == 0.0

    def test_sample_grid_linear(self):
        grid = Parameter("x", 0.0, 1.0).sample_grid(5)
        assert grid[0] == 0.0 and grid[-1] == 1.0
        assert len(grid) == 5

    def test_sample_grid_logarithmic_for_wide_positive_ranges(self):
        grid = Parameter("x", 0.001, 10.0).sample_grid(7)
        ratios = grid[1:] / grid[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_sample_grid_single_point_is_midpoint(self):
        assert Parameter("x", 2.0, 4.0).sample_grid(1)[0] == 3.0

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigurationError):
            Parameter("x", 2.0, 1.0)

    def test_nonfinite_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Parameter("x", 0.0, float("inf"))

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Parameter("", 0.0, 1.0)


class TestParameterSpace:
    def test_dimension_and_names(self, space: ParameterSpace):
        assert space.dimension == 2
        assert space.names == ["alpha", "beta"]
        assert "alpha" in space and "gamma" not in space

    def test_bounds_format_for_scipy(self, space: ParameterSpace):
        assert space.bounds == [(0.0, 1.0), (10.0, 20.0)]

    def test_round_trip_dict_array(self, space: ParameterSpace):
        values = {"alpha": 0.25, "beta": 12.0}
        array = space.to_array(values)
        assert np.allclose(array, [0.25, 12.0])
        assert space.to_dict(array) == values

    def test_to_array_rejects_missing_and_unknown(self, space: ParameterSpace):
        with pytest.raises(ConfigurationError):
            space.to_array({"alpha": 0.5})
        with pytest.raises(ConfigurationError):
            space.to_array({"alpha": 0.5, "beta": 11.0, "gamma": 1.0})

    def test_to_dict_rejects_wrong_length(self, space: ParameterSpace):
        with pytest.raises(ConfigurationError):
            space.to_dict([1.0])

    def test_contains_and_clip(self, space: ParameterSpace):
        assert space.contains([0.5, 15.0])
        assert not space.contains([0.5, 25.0])
        assert np.allclose(space.clip([2.0, 5.0]), [1.0, 10.0])

    def test_midpoint(self, space: ParameterSpace):
        assert np.allclose(space.midpoint(), [0.5, 15.0])

    def test_grid_shape_and_coverage(self, space: ParameterSpace):
        grid = space.grid(4)
        assert grid.shape == (16, 2)
        assert grid[:, 0].min() == 0.0 and grid[:, 0].max() == 1.0
        assert grid[:, 1].min() == 10.0 and grid[:, 1].max() == 20.0

    def test_grid_size_guard(self):
        space = ParameterSpace([Parameter(f"p{i}", 0, 1) for i in range(4)])
        with pytest.raises(ConfigurationError):
            space.grid(100)

    def test_random_points_inside_box(self, space: ParameterSpace):
        points = space.random_points(50, seed=3)
        assert points.shape == (50, 2)
        assert space.contains(points[0])
        assert np.all(points[:, 1] >= 10.0) and np.all(points[:, 1] <= 20.0)

    def test_random_points_reproducible(self, space: ParameterSpace):
        assert np.allclose(space.random_points(5, seed=1), space.random_points(5, seed=1))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ParameterSpace([Parameter("x", 0, 1), Parameter("x", 0, 2)])

    def test_empty_space_rejected(self):
        with pytest.raises(ConfigurationError):
            ParameterSpace([])

    def test_getitem_and_describe(self, space: ParameterSpace):
        assert space["beta"].integer is True
        described = space.describe()
        assert described[0]["name"] == "alpha"
        with pytest.raises(ConfigurationError):
            space["gamma"]
