"""Tests for the Scenario container."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.network.radio import cc1100
from repro.network.topology import RingTopology
from repro.scenario import Scenario, default_scenario


class TestScenario:
    def test_default_scenario_shape(self):
        scenario = default_scenario()
        assert scenario.depth == 5
        assert scenario.density == 8
        assert scenario.sampling_period == pytest.approx(300.0)
        assert scenario.radio.name == "CC2420"

    def test_traffic_model_is_derived_from_scenario(self):
        scenario = Scenario(topology=RingTopology(depth=3, density=4), sampling_rate=0.01)
        assert scenario.traffic.sampling_rate == 0.01
        assert scenario.traffic.topology.depth == 3

    def test_with_topology_returns_modified_copy(self):
        base = default_scenario()
        changed = base.with_topology(depth=7)
        assert changed.depth == 7
        assert changed.density == base.density
        assert base.depth == 5

    def test_with_sampling_rate_and_radio(self):
        base = default_scenario()
        changed = base.with_sampling_rate(0.5).with_radio(cc1100())
        assert changed.sampling_rate == 0.5
        assert changed.radio.name == "CC1100"
        assert base.radio.name == "CC2420"

    def test_with_packets(self):
        base = default_scenario()
        changed = base.with_packets(base.packets.with_payload(96))
        assert changed.packets.payload_bytes == 96

    def test_describe_contains_key_fields(self):
        description = default_scenario().describe()
        assert description["total_nodes"] == 200.0
        assert description["radio"] == "CC2420"

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(topology="nope")  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            Scenario(sampling_rate=0.0)
        with pytest.raises(ConfigurationError):
            Scenario(radio="nope")  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            Scenario(packets="nope")  # type: ignore[arg-type]

    def test_scenario_is_immutable(self):
        scenario = default_scenario()
        with pytest.raises(Exception):
            scenario.sampling_rate = 0.5  # type: ignore[misc]
