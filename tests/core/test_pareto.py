"""Unit tests for Pareto frontier utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pareto import attainment_curve, hypervolume_2d, is_pareto_efficient, pareto_frontier
from repro.exceptions import ConfigurationError


class TestParetoFrontier:
    def test_dominated_points_are_filtered(self):
        points = [(1.0, 5.0), (2.0, 4.0), (3.0, 3.0), (2.5, 4.5), (4.0, 4.0)]
        frontier = pareto_frontier(points)
        assert [tuple(row) for row in frontier] == [(1.0, 5.0), (2.0, 4.0), (3.0, 3.0)]

    def test_mask_matches_frontier(self):
        points = np.array([(1.0, 1.0), (2.0, 2.0), (0.5, 3.0)])
        mask = is_pareto_efficient(points)
        assert mask.tolist() == [True, False, True]

    def test_single_point_is_efficient(self):
        assert is_pareto_efficient([(1.0, 1.0)]).tolist() == [True]

    def test_duplicates_are_both_kept(self):
        mask = is_pareto_efficient([(1.0, 2.0), (1.0, 2.0)])
        assert mask.tolist() == [True, True]

    def test_frontier_sorted_by_first_coordinate(self):
        frontier = pareto_frontier([(3.0, 1.0), (1.0, 3.0), (2.0, 2.0)])
        assert list(frontier[:, 0]) == sorted(frontier[:, 0])

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            pareto_frontier([(1.0, 2.0, 3.0)])
        with pytest.raises(ConfigurationError):
            pareto_frontier([(float("nan"), 1.0)])


class TestHypervolume:
    def test_rectangle_area_for_single_point(self):
        assert hypervolume_2d([(1.0, 1.0)], reference=(3.0, 4.0)) == pytest.approx(6.0)

    def test_two_point_staircase(self):
        volume = hypervolume_2d([(1.0, 2.0), (2.0, 1.0)], reference=(3.0, 3.0))
        # (3-1)*(3-2) + (3-2)*(2-1) = 2 + 1
        assert volume == pytest.approx(3.0)

    def test_better_frontier_has_larger_hypervolume(self):
        good = hypervolume_2d([(1.0, 1.0)], reference=(4.0, 4.0))
        bad = hypervolume_2d([(2.0, 2.0)], reference=(4.0, 4.0))
        assert good > bad

    def test_reference_must_dominate(self):
        with pytest.raises(ConfigurationError):
            hypervolume_2d([(5.0, 1.0)], reference=(4.0, 4.0))


class TestAttainmentCurve:
    def test_best_second_coordinate_under_budget(self):
        points = [(1.0, 5.0), (2.0, 3.0), (3.0, 1.0)]
        curve = attainment_curve(points, grid=[0.5, 1.5, 2.5, 3.5])
        assert curve[0] == (0.5, float("inf"))
        assert curve[1] == (1.5, 5.0)
        assert curve[2] == (2.5, 3.0)
        assert curve[3] == (3.5, 1.0)
