"""Unit tests for the proportional-fairness identity."""

from __future__ import annotations

import pytest

from repro.core.fairness import (
    fairness_shares,
    is_proportionally_fair,
    proportional_fairness_residual,
)
from repro.exceptions import ConfigurationError


class TestFairnessShares:
    def test_equal_shares_give_zero_residual(self):
        # Both players concede exactly half of their worst-to-best distance.
        residual = proportional_fairness_residual(
            energy_star=0.03,
            delay_star=3.0,
            energy_best=0.01,
            energy_worst=0.05,
            delay_best=1.0,
            delay_worst=5.0,
        )
        assert residual == pytest.approx(0.0)

    def test_energy_player_favoured_gives_positive_residual(self):
        residual = proportional_fairness_residual(
            energy_star=0.015,  # close to Ebest
            delay_star=4.5,  # close to Lworst
            energy_best=0.01,
            energy_worst=0.05,
            delay_best=1.0,
            delay_worst=5.0,
        )
        assert residual > 0

    def test_delay_player_favoured_gives_negative_residual(self):
        residual = proportional_fairness_residual(
            energy_star=0.045,
            delay_star=1.5,
            energy_best=0.01,
            energy_worst=0.05,
            delay_best=1.0,
            delay_worst=5.0,
        )
        assert residual < 0

    def test_shares_at_corner_points(self):
        energy_share, delay_share = fairness_shares(
            energy_star=0.01,
            delay_star=5.0,
            energy_best=0.01,
            energy_worst=0.05,
            delay_best=1.0,
            delay_worst=5.0,
        )
        assert energy_share == pytest.approx(1.0)
        assert delay_share == pytest.approx(0.0)

    def test_degenerate_player_treated_as_satisfied(self):
        # Energy player's best equals its worst: its share is defined as 1.
        energy_share, _ = fairness_shares(
            energy_star=0.05,
            delay_star=3.0,
            energy_best=0.05,
            energy_worst=0.05,
            delay_best=1.0,
            delay_worst=5.0,
        )
        assert energy_share == 1.0

    def test_is_proportionally_fair_tolerance(self):
        assert is_proportionally_fair(0.03, 3.0, 0.01, 0.05, 1.0, 5.0)
        assert not is_proportionally_fair(0.011, 4.9, 0.01, 0.05, 1.0, 5.0, tolerance=0.01)

    def test_non_numeric_rejected(self):
        with pytest.raises(ConfigurationError):
            proportional_fairness_residual("x", 1, 1, 1, 1, 1)  # type: ignore[arg-type]
