"""Tests for the optimization problems (P1), (P2) and (P4)."""

from __future__ import annotations

import pytest

from repro.core.problems import (
    DelayMinimizationProblem,
    EnergyMinimizationProblem,
    NashBargainingProblem,
)
from repro.core.requirements import ApplicationRequirements
from repro.exceptions import ConfigurationError, InfeasibleProblemError

SOLVER_OPTIONS = {"grid_points_per_dimension": 50, "random_starts": 2}


class TestEnergyMinimization:
    def test_solution_respects_delay_bound(self, xmac, requirements):
        outcome = EnergyMinimizationProblem(xmac, requirements).solve(**SOLVER_OPTIONS)
        assert outcome.feasible
        assert outcome.point.delay <= requirements.max_delay * 1.001

    def test_tighter_delay_bound_costs_more_energy(self, xmac, requirements):
        loose = EnergyMinimizationProblem(xmac, requirements).solve(**SOLVER_OPTIONS)
        tight = EnergyMinimizationProblem(
            xmac, requirements.with_max_delay(0.5)
        ).solve(**SOLVER_OPTIONS)
        assert tight.point.energy >= loose.point.energy

    def test_binding_constraint_reported_for_tight_bound(self, xmac, requirements):
        tight = EnergyMinimizationProblem(
            xmac, requirements.with_max_delay(0.5)
        ).solve(**SOLVER_OPTIONS)
        assert tight.binding_constraint == "delay-bound"

    def test_infeasible_delay_bound_raises(self, xmac, requirements):
        with pytest.raises(InfeasibleProblemError):
            EnergyMinimizationProblem(
                xmac, requirements.with_max_delay(0.001)
            ).solve(**SOLVER_OPTIONS)

    def test_invalid_model_rejected(self, requirements):
        with pytest.raises(ConfigurationError):
            EnergyMinimizationProblem("not-a-model", requirements)  # type: ignore[arg-type]


class TestDelayMinimization:
    def test_solution_respects_energy_budget(self, xmac, requirements):
        outcome = DelayMinimizationProblem(xmac, requirements).solve(**SOLVER_OPTIONS)
        assert outcome.feasible
        assert outcome.point.energy <= requirements.energy_budget * 1.001

    def test_tighter_budget_costs_more_delay(self, xmac, requirements):
        loose = DelayMinimizationProblem(xmac, requirements).solve(**SOLVER_OPTIONS)
        tight = DelayMinimizationProblem(
            xmac, requirements.with_energy_budget(0.002)
        ).solve(**SOLVER_OPTIONS)
        assert tight.point.delay >= loose.point.delay

    def test_infeasible_budget_raises(self, xmac, requirements):
        with pytest.raises(InfeasibleProblemError):
            DelayMinimizationProblem(
                xmac, requirements.with_energy_budget(1e-6)
            ).solve(**SOLVER_OPTIONS)

    def test_delay_optimum_is_faster_than_energy_optimum(self, dmac, requirements):
        energy_opt = EnergyMinimizationProblem(dmac, requirements).solve(**SOLVER_OPTIONS)
        delay_opt = DelayMinimizationProblem(dmac, requirements).solve(**SOLVER_OPTIONS)
        assert delay_opt.point.delay <= energy_opt.point.delay
        assert delay_opt.point.energy >= energy_opt.point.energy


class TestNashBargainingProblem:
    @pytest.fixture
    def corner_points(self, xmac, requirements):
        energy_opt = EnergyMinimizationProblem(xmac, requirements).solve(**SOLVER_OPTIONS)
        delay_opt = DelayMinimizationProblem(xmac, requirements).solve(**SOLVER_OPTIONS)
        return energy_opt, delay_opt

    def test_agreement_dominates_disagreement_point(self, xmac, requirements, corner_points):
        energy_opt, delay_opt = corner_points
        problem = NashBargainingProblem(
            xmac,
            requirements,
            disagreement_energy=delay_opt.point.energy,
            disagreement_delay=energy_opt.point.delay,
        )
        point, result = problem.solve(**SOLVER_OPTIONS)
        assert result.feasible
        assert point.energy <= delay_opt.point.energy + 1e-9
        assert point.delay <= energy_opt.point.delay + 1e-9

    def test_agreement_lies_between_the_corner_points(self, xmac, requirements, corner_points):
        energy_opt, delay_opt = corner_points
        problem = NashBargainingProblem(
            xmac,
            requirements,
            disagreement_energy=delay_opt.point.energy,
            disagreement_delay=energy_opt.point.delay,
        )
        point, _ = problem.solve(**SOLVER_OPTIONS)
        assert energy_opt.point.energy <= point.energy <= delay_opt.point.energy
        assert delay_opt.point.delay <= point.delay <= energy_opt.point.delay

    def test_nash_product_positive_at_agreement(self, xmac, requirements, corner_points):
        energy_opt, delay_opt = corner_points
        problem = NashBargainingProblem(
            xmac,
            requirements,
            disagreement_energy=delay_opt.point.energy,
            disagreement_delay=energy_opt.point.delay,
        )
        point, result = problem.solve(**SOLVER_OPTIONS)
        assert problem.nash_product(result.x) > 0

    def test_invalid_disagreement_point_rejected(self, xmac, requirements):
        with pytest.raises(ConfigurationError):
            NashBargainingProblem(xmac, requirements, disagreement_energy=0.0, disagreement_delay=1.0)
