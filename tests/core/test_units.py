"""Tests for unit conversion helpers."""

from __future__ import annotations

import pytest

from repro import units


class TestConversions:
    def test_time_round_trip(self):
        assert units.ms_to_s(units.s_to_ms(1.234)) == pytest.approx(1.234)
        assert units.s_to_ms(2.0) == 2000.0

    def test_bytes_bits_round_trip(self):
        assert units.bits_to_bytes(units.bytes_to_bits(17)) == 17
        assert units.bytes_to_bits(10) == 80

    def test_power_conversions(self):
        assert units.mw_to_w(60.0) == pytest.approx(0.06)
        assert units.w_to_mw(0.06) == pytest.approx(60.0)
        assert units.ma_to_w(20.0, voltage=3.0) == pytest.approx(0.06)

    def test_ma_to_w_requires_positive_voltage(self):
        with pytest.raises(ValueError):
            units.ma_to_w(10.0, voltage=0.0)

    def test_clamp(self):
        assert units.clamp(5.0, 0.0, 1.0) == 1.0
        assert units.clamp(-5.0, 0.0, 1.0) == 0.0
        assert units.clamp(0.5, 0.0, 1.0) == 0.5
        with pytest.raises(ValueError):
            units.clamp(0.5, 1.0, 0.0)

    def test_require_positive(self):
        assert units.require_positive("x", 2.0) == 2.0
        with pytest.raises(ValueError):
            units.require_positive("x", 0.0)
        with pytest.raises(ValueError):
            units.require_positive("x", float("nan"))

    def test_require_non_negative(self):
        assert units.require_non_negative("x", 0.0) == 0.0
        with pytest.raises(ValueError):
            units.require_non_negative("x", -1.0)

    def test_require_in_range(self):
        assert units.require_in_range("x", 0.5, 0.0, 1.0) == 0.5
        with pytest.raises(ValueError):
            units.require_in_range("x", 2.0, 0.0, 1.0)

    def test_is_close(self):
        assert units.is_close(1.0, 1.0 + 1e-12)
        assert not units.is_close(1.0, 1.1)

    def test_mean(self):
        assert units.mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            units.mean([])
