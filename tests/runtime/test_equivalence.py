"""Parallel/serial equivalence: the runtime's core guarantee.

A sweep run through the batch runner must produce bit-identical
``SweepResult.series()`` rows whether it runs serially, on a thread pool or
on a process pool — and whether the solutions come from fresh solves or
from the cache.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweep import sweep_delay_bound, sweep_energy_budget
from repro.protocols.registry import available_protocols, create_protocol
from repro.runtime import BatchRunner, SolveCache, build_runner

FAST = {"grid_points_per_dimension": 15, "random_starts": 1}
DELAYS = [2.0, 4.0, 6.0]
BUDGETS = [0.02, 0.06]


def _serial() -> BatchRunner:
    return build_runner(workers=1, use_cache=False)


def _parallel(workers: int = 4) -> BatchRunner:
    return build_runner(workers=workers, use_cache=False)


@pytest.mark.parametrize("protocol", available_protocols())
class TestParallelSerialEquivalence:
    def test_delay_sweep_rows_identical(self, protocol, small_scenario):
        model = create_protocol(protocol, small_scenario)
        serial = sweep_delay_bound(
            model, energy_budget=0.06, delay_bounds=DELAYS, runner=_serial(), **FAST
        )
        parallel = sweep_delay_bound(
            model, energy_budget=0.06, delay_bounds=DELAYS, runner=_parallel(), **FAST
        )
        # Bit-identical: == on floats, no tolerance.
        assert serial.series() == parallel.series()
        assert serial.feasibility == parallel.feasibility
        assert serial.infeasible_values == parallel.infeasible_values

    def test_energy_sweep_rows_identical(self, protocol, small_scenario):
        model = create_protocol(protocol, small_scenario)
        serial = sweep_energy_budget(
            model, max_delay=6.0, energy_budgets=BUDGETS, runner=_serial(), **FAST
        )
        parallel = sweep_energy_budget(
            model, max_delay=6.0, energy_budgets=BUDGETS, runner=_parallel(), **FAST
        )
        assert serial.series() == parallel.series()


class TestInfeasibleEquivalence:
    def test_partially_infeasible_sweep_identical(self, xmac):
        delays = [1e-4, 3.0, 1e-5, 5.0]
        serial = sweep_delay_bound(
            xmac, energy_budget=0.06, delay_bounds=delays, runner=_serial(), **FAST
        )
        parallel = sweep_delay_bound(
            xmac, energy_budget=0.06, delay_bounds=delays, runner=_parallel(2), **FAST
        )
        assert serial.series() == parallel.series()
        assert serial.infeasible_values == parallel.infeasible_values == [1e-4, 1e-5]
        assert serial.feasibility == [False, True, False, True]


class TestCacheDeterminism:
    def test_cache_hit_rows_identical_to_fresh_solve(self, xmac):
        cache = SolveCache()
        runner = BatchRunner(cache=cache)
        fresh = sweep_delay_bound(
            xmac, energy_budget=0.06, delay_bounds=DELAYS, runner=runner, **FAST
        )
        assert (fresh.cache_hits, fresh.cache_misses) == (0, len(DELAYS))
        cached = sweep_delay_bound(
            xmac, energy_budget=0.06, delay_bounds=DELAYS, runner=runner, **FAST
        )
        assert (cached.cache_hits, cached.cache_misses) == (len(DELAYS), 0)
        assert cached.series() == fresh.series()
        assert [s.as_dict() for s in cached.solutions] == [s.as_dict() for s in fresh.solutions]

    def test_cache_warmed_by_parallel_run_serves_serial_run(self, xmac):
        cache = SolveCache()
        warm = sweep_delay_bound(
            xmac,
            energy_budget=0.06,
            delay_bounds=DELAYS,
            runner=build_runner(workers=2, cache=cache),
            **FAST,
        )
        served = sweep_delay_bound(
            xmac,
            energy_budget=0.06,
            delay_bounds=DELAYS,
            runner=BatchRunner(cache=cache),
            **FAST,
        )
        assert served.cache_hits == len(DELAYS)
        assert served.series() == warm.series()
