"""Tests for the solve cache: keys, stats, LRU bound, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.requirements import ApplicationRequirements
from repro.core.tradeoff import EnergyDelayGame
from repro.protocols.xmac import XMACModel
from repro.runtime.cache import (
    SolveCache,
    default_cache,
    freeze,
    model_fingerprint,
    solve_key,
)

FAST = {"grid_points_per_dimension": 15, "random_starts": 1}


class TestFreeze:
    def test_scalars_pass_through(self):
        assert freeze(3) == 3
        assert freeze("x") == "x"
        assert freeze(None) is None

    def test_mappings_are_order_insensitive(self):
        assert freeze({"a": 1, "b": 2}) == freeze({"b": 2, "a": 1})

    def test_sequences_keep_order(self):
        assert freeze([1, 2]) != freeze([2, 1])

    def test_numpy_arrays_by_content(self):
        assert freeze(np.arange(4.0)) == freeze(np.arange(4.0))
        assert freeze(np.arange(4.0)) != freeze(np.arange(4.0) + 1)

    def test_result_is_hashable(self):
        key = freeze({"a": [1, {"b": np.ones(2)}]})
        assert hash(key) is not None


class TestModelFingerprint:
    def test_equal_models_share_fingerprint(self, small_scenario):
        assert model_fingerprint(XMACModel(small_scenario)) == model_fingerprint(
            XMACModel(small_scenario)
        )

    def test_different_scenarios_differ(self, small_scenario, paper_scenario):
        assert model_fingerprint(XMACModel(small_scenario)) != model_fingerprint(
            XMACModel(paper_scenario)
        )

    def test_solving_does_not_change_fingerprint(self, small_scenario):
        model = XMACModel(small_scenario)
        before = model_fingerprint(model)
        requirements = ApplicationRequirements(energy_budget=0.06, max_delay=3.0)
        EnergyDelayGame(model, requirements, **FAST).solve()
        assert model_fingerprint(model) == before


class TestSolveKey:
    def test_key_depends_on_requirements(self, xmac):
        loose = ApplicationRequirements(energy_budget=0.06, max_delay=6.0)
        tight = loose.with_max_delay(1.0)
        assert solve_key(xmac, loose, {}) != solve_key(xmac, tight, {})

    def test_key_depends_on_solver_options(self, xmac, requirements):
        assert solve_key(xmac, requirements, {"grid_points_per_dimension": 10}) != solve_key(
            xmac, requirements, {"grid_points_per_dimension": 20}
        )

    def test_option_order_is_irrelevant(self, xmac, requirements):
        a = solve_key(xmac, requirements, {"x": 1, "y": 2})
        b = solve_key(xmac, requirements, {"y": 2, "x": 1})
        assert a == b


class TestSolveCache:
    def test_miss_then_hit(self, xmac, requirements):
        cache = SolveCache()
        key = solve_key(xmac, requirements, FAST)
        assert cache.get(key) is None
        solution = EnergyDelayGame(xmac, requirements, **FAST).solve()
        cache.put(key, solution)
        assert cache.get(key) is solution
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_cache_hit_returns_identical_contents(self, xmac, requirements):
        cache = SolveCache()
        key = solve_key(xmac, requirements, FAST)
        cache.put(key, EnergyDelayGame(xmac, requirements, **FAST).solve())
        first = cache.get(key)
        second = cache.get(key)
        assert first.as_dict() == second.as_dict()
        assert first.as_dict() == EnergyDelayGame(xmac, requirements, **FAST).solve().as_dict()

    def test_lru_eviction(self, xmac, requirements):
        cache = SolveCache(max_entries=2)
        solution = EnergyDelayGame(xmac, requirements, **FAST).solve()
        keys = [solve_key(xmac, requirements.with_max_delay(d), FAST) for d in (2.0, 3.0, 4.0)]
        for key in keys:
            cache.put(key, solution)
        assert len(cache) == 2
        assert keys[0] not in cache
        assert keys[1] in cache and keys[2] in cache
        assert cache.stats().evictions == 1

    def test_clear_resets_everything(self, xmac, requirements):
        cache = SolveCache()
        key = solve_key(xmac, requirements, FAST)
        cache.get(key)
        cache.put(key, EnergyDelayGame(xmac, requirements, **FAST).solve())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().lookups == 0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            SolveCache(max_entries=0)

    def test_default_cache_is_a_singleton(self):
        assert default_cache() is default_cache()

    def test_empty_stats(self):
        stats = SolveCache().stats()
        assert stats.hit_rate == 0.0
        assert stats.as_dict()["cache_entries"] == 0
