"""Tests for the batch runner: chunking, error capture, progress, caching."""

from __future__ import annotations

import pytest

from repro.core.requirements import ApplicationRequirements
from repro.exceptions import ConfigurationError
from repro.runtime import (
    BatchRunner,
    SolveCache,
    SolveTask,
    ThreadExecutor,
    build_runner,
    default_runner,
)

FAST = {"grid_points_per_dimension": 15, "random_starts": 1}


def _tasks(model, delays):
    base = ApplicationRequirements(
        energy_budget=0.06, max_delay=6.0, sampling_rate=model.scenario.sampling_rate
    )
    return [
        SolveTask(
            model=model,
            requirements=base.with_max_delay(delay),
            solver_options=dict(FAST),
            label=model.name,
            tag=delay,
        )
        for delay in delays
    ]


class TestRun:
    def test_outcomes_in_submission_order(self, xmac):
        outcomes = BatchRunner(cache=None).run(_tasks(xmac, [3.0, 2.0, 4.0]))
        assert [outcome.tag for outcome in outcomes] == [3.0, 2.0, 4.0]
        assert [outcome.index for outcome in outcomes] == [0, 1, 2]
        assert all(outcome.ok for outcome in outcomes)
        assert all(outcome.solve_seconds > 0 for outcome in outcomes)

    def test_infeasible_value_does_not_poison_its_chunk(self, xmac):
        # One chunk holds all three tasks; the infeasible middle value must
        # be captured while its neighbours still solve.
        runner = BatchRunner(cache=None, chunk_size=3)
        outcomes = runner.run(_tasks(xmac, [3.0, 1e-4, 4.0]))
        assert [outcome.ok for outcome in outcomes] == [True, False, True]
        assert outcomes[1].infeasible
        assert outcomes[1].solution is None
        assert isinstance(outcomes[1].error, Exception)

    def test_empty_batch(self):
        assert BatchRunner().run([]) == []

    def test_run_one(self, xmac):
        outcome = BatchRunner(cache=None).run_one(_tasks(xmac, [3.0])[0])
        assert outcome.ok and outcome.label == "X-MAC"

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(chunk_size=0)


class TestProgress:
    def test_progress_reaches_total(self, xmac):
        calls = []
        runner = BatchRunner(cache=None, chunk_size=1, progress=lambda d, t: calls.append((d, t)))
        runner.run(_tasks(xmac, [2.0, 3.0, 4.0]))
        assert calls[0] == (0, 3)
        assert calls[-1] == (3, 3)
        done = [d for d, _ in calls]
        assert done == sorted(done)

    def test_cache_hits_count_as_progress(self, xmac):
        cache = SolveCache()
        tasks = _tasks(xmac, [2.0, 3.0])
        BatchRunner(cache=cache).run(tasks)
        calls = []
        BatchRunner(cache=cache, progress=lambda d, t: calls.append((d, t))).run(tasks)
        assert calls[0] == (2, 2)


class TestCaching:
    def test_second_run_is_all_hits(self, xmac):
        cache = SolveCache()
        runner = BatchRunner(cache=cache)
        tasks = _tasks(xmac, [2.0, 3.0])
        first = runner.run(tasks)
        second = runner.run(tasks)
        assert not any(outcome.from_cache for outcome in first)
        assert all(outcome.from_cache for outcome in second)
        assert [a.solution.as_dict() for a in first] == [b.solution.as_dict() for b in second]
        stats = runner.cache_stats()
        assert (stats.hits, stats.misses) == (2, 2)

    def test_failed_solves_are_not_cached(self, xmac):
        cache = SolveCache()
        runner = BatchRunner(cache=cache)
        tasks = _tasks(xmac, [1e-4])
        assert not runner.run(tasks)[0].ok
        assert len(cache) == 0

    def test_cache_disabled(self, xmac):
        runner = BatchRunner(cache=None)
        tasks = _tasks(xmac, [3.0])
        runner.run(tasks)
        second = runner.run(tasks)[0]
        assert not second.from_cache
        assert runner.cache_stats().lookups == 0

    def test_in_batch_duplicates_solved_once(self, xmac):
        cache = SolveCache()
        runner = BatchRunner(cache=cache)
        tasks = _tasks(xmac, [3.0, 2.0, 3.0])
        outcomes = runner.run(tasks)
        assert [outcome.ok for outcome in outcomes] == [True, True, True]
        # The duplicate rides on the first occurrence's solve: one solve per
        # unique key, no cache lookup wasted on the duplicate.
        assert outcomes[2].solution is outcomes[0].solution
        assert outcomes[2].from_cache and not outcomes[0].from_cache
        assert runner.cache_stats().misses == 2

    def test_in_batch_duplicate_of_infeasible_task_shares_the_error(self, xmac):
        runner = BatchRunner(cache=SolveCache())
        outcomes = runner.run(_tasks(xmac, [1e-4, 1e-4]))
        assert all(outcome.infeasible for outcome in outcomes)
        assert outcomes[1].error is outcomes[0].error
        assert not outcomes[1].from_cache

    def test_parallel_runner_shares_cache_with_serial(self, xmac):
        cache = SolveCache()
        tasks = _tasks(xmac, [2.0, 3.0, 4.0])
        BatchRunner(cache=cache).run(tasks)
        parallel = BatchRunner(executor=ThreadExecutor(workers=2), cache=cache)
        outcomes = parallel.run(tasks)
        assert all(outcome.from_cache for outcome in outcomes)


class TestBuildRunner:
    def test_default_is_serial_and_cached(self):
        runner = build_runner()
        assert runner.executor.name == "serial"
        assert runner.cache is not None

    def test_workers_select_process_pool(self):
        runner = build_runner(workers=3, use_cache=False)
        assert runner.executor.name == "process"
        assert runner.executor.workers == 3
        assert runner.cache is None
        assert runner.describe() == "process[3]"

    def test_explicit_cache_wins(self):
        cache = SolveCache()
        assert build_runner(cache=cache).cache is cache

    def test_no_cache_beats_explicit_cache(self):
        assert build_runner(use_cache=False, cache=SolveCache()).cache is None

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            build_runner(workers=2, mode="quantum")

    def test_default_runner_uses_global_cache(self):
        from repro.runtime import default_cache

        assert default_runner().cache is default_cache()
