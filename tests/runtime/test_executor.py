"""Tests for the executor policies (ordering, concurrency, errors)."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.executor import (
    EXECUTOR_MODES,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)


def _square(value):
    return value * value


def _sleep_inverse(value):
    # Later submissions finish earlier, exercising out-of-order completion.
    time.sleep(0.05 / (value + 1))
    return value * 10


def _boom(value):
    raise ValueError(f"boom {value}")


ALL_POLICIES = [
    SerialExecutor(),
    ThreadExecutor(workers=4),
    ProcessExecutor(workers=2),
]


@pytest.mark.parametrize("executor", ALL_POLICIES, ids=lambda e: e.name)
class TestMapOrdered:
    def test_results_in_submission_order(self, executor):
        assert executor.map_ordered(_square, range(8)) == [i * i for i in range(8)]

    def test_order_kept_even_when_completion_order_reverses(self, executor):
        assert executor.map_ordered(_sleep_inverse, range(5)) == [0, 10, 20, 30, 40]

    def test_empty_batch(self, executor):
        assert executor.map_ordered(_square, []) == []

    def test_errors_propagate(self, executor):
        with pytest.raises(ValueError, match="boom"):
            executor.map_ordered(_boom, [1, 2])

    def test_on_result_sees_every_index(self, executor):
        seen = {}
        executor.map_ordered(_square, range(6), lambda i, r: seen.__setitem__(i, r))
        assert seen == {i: i * i for i in range(6)}


class TestPolicies:
    def test_serial_is_single_worker(self):
        assert SerialExecutor().workers == 1
        assert SerialExecutor().describe() == "serial[1]"

    def test_pool_worker_counts(self):
        assert ThreadExecutor(workers=3).workers == 3
        assert ProcessExecutor(workers=2).describe() == "process[2]"

    def test_default_workers_use_cpu_count(self):
        assert ThreadExecutor().workers >= 1
        assert ProcessExecutor(workers=0).workers >= 1


class TestResolveExecutor:
    def test_auto_one_worker_is_serial(self):
        assert isinstance(resolve_executor(1), SerialExecutor)

    def test_auto_many_workers_is_process(self):
        executor = resolve_executor(4)
        assert isinstance(executor, ProcessExecutor)
        assert executor.workers == 4

    def test_explicit_modes(self):
        assert isinstance(resolve_executor(2, "serial"), SerialExecutor)
        assert isinstance(resolve_executor(2, "thread"), ThreadExecutor)
        assert isinstance(resolve_executor(2, "process"), ProcessExecutor)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_executor(2, "gpu")

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_executor(-1)

    def test_modes_constant_is_exhaustive(self):
        assert set(EXECUTOR_MODES) == {"auto", "serial", "thread", "process"}
