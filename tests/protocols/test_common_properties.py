"""Properties every duty-cycled MAC analytical model must satisfy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.network.topology import RingTopology
from repro.protocols import DMACModel, LMACModel, SCPMACModel, XMACModel
from repro.scenario import Scenario

PROTOCOL_CLASSES = [XMACModel, DMACModel, LMACModel, SCPMACModel]


def make_model(cls, depth=4, density=6, sampling_period=600.0):
    scenario = Scenario(
        topology=RingTopology(depth=depth, density=density),
        sampling_rate=1.0 / sampling_period,
    )
    return cls(scenario)


def midpoint(model):
    space = model.parameter_space
    return space.to_dict(space.midpoint())


@pytest.mark.parametrize("cls", PROTOCOL_CLASSES)
class TestCommonProtocolProperties:
    def test_energy_is_positive_everywhere(self, cls):
        model = make_model(cls)
        for point in model.parameter_space.grid(7):
            assert model.system_energy(point) > 0

    def test_latency_is_positive_everywhere(self, cls):
        model = make_model(cls)
        for point in model.parameter_space.grid(7):
            assert model.system_latency(point) > 0

    def test_energy_breakdown_sums_to_node_energy(self, cls):
        model = make_model(cls)
        params = midpoint(model)
        for ring in model.scenario.topology.rings():
            breakdown = model.energy_breakdown(params, ring)
            assert breakdown.total == pytest.approx(model.node_energy(params, ring))

    def test_system_energy_is_max_over_rings(self, cls):
        model = make_model(cls)
        params = midpoint(model)
        ring_energies = model.ring_energies(params)
        assert model.system_energy(params) == pytest.approx(max(ring_energies.values()))

    def test_bottleneck_is_ring_one(self, cls):
        model = make_model(cls)
        params = midpoint(model)
        ring_energies = model.ring_energies(params)
        assert ring_energies[1] == pytest.approx(max(ring_energies.values()))

    def test_e2e_latency_increases_with_source_ring(self, cls):
        model = make_model(cls)
        params = midpoint(model)
        delays = [model.e2e_latency(params, ring) for ring in model.scenario.topology.rings()]
        assert all(later >= earlier for earlier, later in zip(delays, delays[1:]))

    def test_system_latency_is_outermost_ring_latency(self, cls):
        model = make_model(cls)
        params = midpoint(model)
        assert model.system_latency(params) == pytest.approx(
            model.e2e_latency(params, model.scenario.depth)
        )

    def test_duty_cycle_in_unit_interval(self, cls):
        model = make_model(cls)
        for point in model.parameter_space.grid(5):
            for ring in model.scenario.topology.rings():
                duty = model.duty_cycle(point, ring)
                assert 0.0 < duty <= 1.0

    def test_energy_bounded_by_always_on_radio(self, cls):
        model = make_model(cls)
        ceiling = model.scenario.radio.always_on_power * 1.05
        for point in model.parameter_space.grid(6):
            assert model.system_energy(point) <= ceiling

    def test_parameters_accepted_as_dict_and_array(self, cls):
        model = make_model(cls)
        params_dict = midpoint(model)
        params_array = model.parameter_space.to_array(params_dict)
        assert model.system_energy(params_dict) == pytest.approx(model.system_energy(params_array))
        assert model.system_latency(params_dict) == pytest.approx(
            model.system_latency(params_array)
        )

    def test_unknown_parameter_name_rejected(self, cls):
        model = make_model(cls)
        with pytest.raises(ConfigurationError):
            model.system_energy({"definitely_not_a_parameter": 1.0})

    def test_wrong_parameter_count_rejected(self, cls):
        model = make_model(cls)
        with pytest.raises(ConfigurationError):
            model.system_energy(np.zeros(model.parameter_space.dimension + 1))

    def test_midpoint_is_admissible(self, cls):
        model = make_model(cls)
        assert model.is_admissible(midpoint(model))

    def test_denser_traffic_costs_more_energy(self, cls):
        light = make_model(cls, sampling_period=1200.0)
        heavy = make_model(cls, sampling_period=300.0)
        params = midpoint(light)
        assert heavy.system_energy(params) > light.system_energy(params)

    def test_deeper_network_has_larger_delay(self, cls):
        shallow = make_model(cls, depth=3)
        deep = make_model(cls, depth=6)
        params = midpoint(shallow)
        assert deep.system_latency(params) > shallow.system_latency(params)

    def test_evaluate_report_is_consistent(self, cls):
        model = make_model(cls)
        params = midpoint(model)
        report = model.evaluate(params)
        assert report["protocol"] == model.name
        assert report["energy_j_per_s"] == pytest.approx(model.system_energy(params))
        assert report["delay_s"] == pytest.approx(model.system_latency(params))
        assert report["admissible"] is True

    def test_lifetime_decreases_with_energy(self, cls):
        model = make_model(cls)
        space = model.parameter_space
        low_energy_point = None
        high_energy_point = None
        for point in space.grid(9):
            energy = model.system_energy(point)
            if low_energy_point is None or energy < model.system_energy(low_energy_point):
                low_energy_point = point
            if high_energy_point is None or energy > model.system_energy(high_energy_point):
                high_energy_point = point
        assert model.lifetime_days(low_energy_point) > model.lifetime_days(high_energy_point)

    def test_constraint_margins_include_bounds(self, cls):
        model = make_model(cls)
        margins = model.constraint_margins(midpoint(model))
        assert len(margins) == 1 + 2 * model.parameter_space.dimension
        assert all(margin >= 0 for margin in margins[1:])

    def test_scenario_round_trip(self, cls):
        model = make_model(cls)
        assert model.scenario.depth == 4
        assert model.traffic.sampling_rate == pytest.approx(1.0 / 600.0)
