"""X-MAC specific model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.topology import RingTopology
from repro.protocols.xmac import XMACModel
from repro.scenario import Scenario


class TestXMACModel:
    def test_single_tunable_parameter(self, xmac: XMACModel):
        assert xmac.parameter_space.names == [XMACModel.WAKEUP_INTERVAL]

    def test_upper_bound_capped_by_sampling_period(self):
        scenario = Scenario(topology=RingTopology(depth=3, density=4), sampling_rate=1.0 / 2.0)
        model = XMACModel(scenario, max_wakeup_interval=10.0)
        assert model.parameter_space[XMACModel.WAKEUP_INTERVAL].upper == pytest.approx(2.0)

    def test_inconsistent_bounds_rejected(self, small_scenario):
        with pytest.raises(ValueError):
            XMACModel(small_scenario, min_wakeup_interval=2.0, max_wakeup_interval=1.0)

    def test_energy_is_u_shaped_in_wakeup_interval(self, xmac: XMACModel):
        space = xmac.parameter_space
        grid = np.geomspace(space.lower_bounds[0], space.upper_bounds[0], 60)
        energies = [xmac.system_energy([w]) for w in grid]
        best = int(np.argmin(energies))
        # Interior minimum: polling dominates on the left, strobing on the right.
        assert 0 < best < len(grid) - 1
        assert energies[0] > energies[best]
        assert energies[-1] > energies[best]

    def test_latency_increases_linearly_with_wakeup_interval(self, xmac: XMACModel):
        slow = xmac.system_latency([2.0])
        fast = xmac.system_latency([0.2])
        assert slow > fast
        depth = xmac.scenario.depth
        assert slow - fast == pytest.approx(depth * 0.5 * (2.0 - 0.2), rel=1e-6)

    def test_carrier_sense_energy_scales_inversely_with_wakeup(self, xmac: XMACModel):
        short = xmac.energy_breakdown([0.1], 1).carrier_sense
        long = xmac.energy_breakdown([1.0], 1).carrier_sense
        assert short == pytest.approx(10.0 * long, rel=1e-9)

    def test_transmit_energy_grows_with_wakeup(self, xmac: XMACModel):
        assert xmac.energy_breakdown([1.0], 1).transmit > xmac.energy_breakdown([0.1], 1).transmit

    def test_no_sync_cost(self, xmac: XMACModel):
        breakdown = xmac.energy_breakdown([0.5], 1)
        assert breakdown.sync_transmit == 0.0
        assert breakdown.sync_receive == 0.0

    def test_outer_ring_has_no_reception_cost(self, xmac: XMACModel):
        breakdown = xmac.energy_breakdown([0.5], xmac.scenario.depth)
        assert breakdown.receive == pytest.approx(0.0)

    def test_capacity_margin_shrinks_with_wakeup_interval(self, xmac: XMACModel):
        assert xmac.capacity_margin([0.1]) > xmac.capacity_margin([3.0])

    def test_capacity_violated_under_heavy_traffic_and_long_wakeup(self):
        scenario = Scenario(topology=RingTopology(depth=6, density=8), sampling_rate=1.0 / 20.0)
        model = XMACModel(scenario)
        assert model.capacity_margin([5.0]) < 0
        assert not model.is_admissible([5.0])

    def test_duty_cycle_decreases_then_increases(self, xmac: XMACModel):
        # Very frequent polling keeps the radio busy; very long intervals make
        # every transmission strobe for a long time.
        duties = [xmac.duty_cycle([w], 1) for w in (0.02, 0.4, 4.0)]
        assert duties[0] > duties[1]
        assert duties[2] > duties[1]
