"""DMAC specific model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.topology import RingTopology
from repro.protocols.dmac import DMACModel
from repro.scenario import Scenario


class TestDMACModel:
    def test_single_tunable_parameter(self, dmac: DMACModel):
        assert dmac.parameter_space.names == [DMACModel.FRAME_LENGTH]

    def test_slot_time_covers_contention_and_exchange(self, dmac: DMACModel):
        packets = dmac.scenario.packets
        radio = dmac.scenario.radio
        assert dmac.slot_time > packets.data_airtime(radio) + packets.ack_airtime(radio)

    def test_min_frame_holds_three_slots(self, dmac: DMACModel):
        assert dmac.min_frame == pytest.approx(3.0 * dmac.slot_time)

    def test_energy_monotonically_decreases_with_frame_length(self, dmac: DMACModel):
        space = dmac.parameter_space
        grid = np.linspace(space.lower_bounds[0], space.upper_bounds[0], 30)
        energies = [dmac.system_energy([f]) for f in grid]
        assert all(later <= earlier + 1e-12 for earlier, later in zip(energies, energies[1:]))

    def test_latency_increases_with_frame_length(self, dmac: DMACModel):
        assert dmac.system_latency([4.0]) > dmac.system_latency([1.0])

    def test_e2e_latency_is_half_frame_plus_one_slot_per_hop(self, dmac: DMACModel):
        frame = 2.0
        expected = 0.5 * frame + dmac.scenario.depth * dmac.slot_time
        assert dmac.system_latency([frame]) == pytest.approx(expected)

    def test_staggered_hop_latency_is_one_slot(self, dmac: DMACModel):
        assert dmac.hop_latency([2.0], 2) == pytest.approx(dmac.slot_time)

    def test_sync_costs_present(self, dmac: DMACModel):
        breakdown = dmac.energy_breakdown([2.0], 1)
        assert breakdown.sync_transmit > 0
        assert breakdown.sync_receive > 0

    def test_idle_listening_dominates_at_low_traffic(self, dmac: DMACModel):
        breakdown = dmac.energy_breakdown([1.0], dmac.scenario.depth)
        assert breakdown.carrier_sense > breakdown.transmit

    def test_capacity_margin_accounts_for_collision_domain(self):
        # Heavy traffic: the whole network's packets funnel through ring 1's
        # shared transmit slot, so long frames become infeasible.
        scenario = Scenario(topology=RingTopology(depth=5, density=8), sampling_rate=1.0 / 60.0)
        model = DMACModel(scenario)
        assert model.capacity_margin([0.2]) > 0
        assert model.capacity_margin([9.0]) < 0

    def test_max_frame_capped_by_sampling_period(self):
        scenario = Scenario(topology=RingTopology(depth=3, density=4), sampling_rate=1.0 / 5.0)
        model = DMACModel(scenario, max_frame=20.0)
        assert model.parameter_space[DMACModel.FRAME_LENGTH].upper == pytest.approx(5.0)

    def test_invalid_contention_window_rejected(self, small_scenario):
        with pytest.raises(ValueError):
            DMACModel(small_scenario, contention_window=0.0)

    def test_invalid_max_frame_rejected(self, small_scenario):
        with pytest.raises(ValueError):
            DMACModel(small_scenario, max_frame=0.01)
