"""Bit-identity of the batched protocol evaluation.

The vectorized layer (``energy_many`` / ``latency_many`` /
``capacity_margin_many``) exists to make grid evaluation fast *without*
changing a single bit of any result: parallel partitioning of a search must
be invisible in its output.  These tests compare the batched methods against
the scalar methods row by row with exact ``==`` (no tolerance) across all
built-in protocols and a spread of scenarios, including bursty traffic and
non-default radios.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.network.radio import cc1100, tr1001
from repro.network.topology import RingTopology
from repro.protocols.base import DutyCycledMACModel
from repro.protocols.registry import available_protocols, create_protocol
from repro.scenario import Scenario, default_scenario

SCENARIOS = {
    "default": default_scenario(),
    "deep-sparse": Scenario(
        topology=RingTopology(depth=7, density=4), sampling_rate=1.0 / 900.0
    ),
    "dense": Scenario(topology=RingTopology(depth=3, density=14), sampling_rate=1.0 / 1800.0),
    "cc1100": Scenario(sampling_rate=1.0 / 600.0, radio=cc1100()),
    "tr1001-bursty": Scenario(
        sampling_rate=1.0 / 600.0, radio=tr1001(), burstiness=5.0
    ),
}


def _models():
    for scenario_name, scenario in SCENARIOS.items():
        for protocol in available_protocols():
            yield pytest.param(
                scenario, protocol, id=f"{scenario_name}-{protocol}"
            )


@pytest.mark.parametrize("scenario, protocol", _models())
def test_batched_methods_bit_identical_to_scalar(scenario, protocol):
    model = create_protocol(protocol, scenario)
    grid = model.parameter_space.grid(19)

    energy_scalar = np.array([model.system_energy(row) for row in grid])
    latency_scalar = np.array([model.system_latency(row) for row in grid])
    capacity_scalar = np.array([model.capacity_margin(row) for row in grid])

    assert np.array_equal(model.energy_many(grid), energy_scalar)
    assert np.array_equal(model.latency_many(grid), latency_scalar)
    assert np.array_equal(model.capacity_margin_many(grid), capacity_scalar)


@pytest.mark.parametrize("protocol", available_protocols())
def test_batched_methods_match_base_fallback(protocol):
    """The base-class row loop and the NumPy overrides agree exactly."""
    model = create_protocol(protocol, default_scenario())
    grid = model.parameter_space.grid(9)
    assert np.array_equal(
        model.energy_many(grid), DutyCycledMACModel.energy_many(model, grid)
    )
    assert np.array_equal(
        model.latency_many(grid), DutyCycledMACModel.latency_many(model, grid)
    )
    assert np.array_equal(
        model.capacity_margin_many(grid),
        DutyCycledMACModel.capacity_margin_many(model, grid),
    )


def test_single_row_grid_accepted():
    """A 1-D array of length ``dimension`` is treated as one row."""
    model = create_protocol("xmac", default_scenario())
    point = model.parameter_space.midpoint()
    values = model.energy_many(point)
    assert values.shape == (1,)
    assert values[0] == model.system_energy(point)


def test_wrong_grid_shape_rejected():
    model = create_protocol("lmac", default_scenario())  # 2-D parameter space
    with pytest.raises(ConfigurationError):
        model.energy_many(np.zeros((4, 3)))
    with pytest.raises(ConfigurationError):
        model.latency_many(np.zeros(3))
    with pytest.raises(ConfigurationError):
        model.capacity_margin_many(np.zeros((2, 2, 2)))


def test_bursty_traffic_tightens_capacity_only():
    """Bursts shrink the capacity margin but leave energy/latency untouched."""
    periodic = Scenario(sampling_rate=1.0 / 600.0)
    bursty = periodic.with_burstiness(6.0)
    for protocol in available_protocols():
        base = create_protocol(protocol, periodic)
        stressed = create_protocol(protocol, bursty)
        grid = base.parameter_space.grid(7)
        assert np.array_equal(base.energy_many(grid), stressed.energy_many(grid))
        assert np.array_equal(base.latency_many(grid), stressed.latency_many(grid))
        assert np.all(
            stressed.capacity_margin_many(grid) < base.capacity_margin_many(grid)
        ), protocol


@pytest.mark.parametrize("protocol", available_protocols())
def test_is_admissible_many_matches_scalar(protocol):
    model = create_protocol(protocol, default_scenario())
    grid = model.parameter_space.grid(9)
    # Include points outside the box so both branches of the check matter.
    shifted = np.vstack([grid, grid * 1.5, grid * 0.0])
    expected = np.array([model.is_admissible(row) for row in shifted])
    assert np.array_equal(model.is_admissible_many(shifted), expected)


def test_is_admissible_many_honours_custom_constraints():
    """A subclass extending constraint_margins must not be silently ignored."""
    from repro.protocols.xmac import XMACModel

    class CappedXMAC(XMACModel):
        """X-MAC with an extra constraint: wake-up interval at most 1 s."""

        def constraint_margins(self, params):
            margins = super().constraint_margins(params)
            margins.append(1.0 - self.coerce(params)[self.WAKEUP_INTERVAL])
            return margins

    model = CappedXMAC(default_scenario())
    grid = model.parameter_space.grid(15)
    expected = np.array([model.is_admissible(row) for row in grid])
    actual = model.is_admissible_many(grid)
    assert np.array_equal(actual, expected)
    assert not actual.all(), "the cap must exclude some grid points"
    assert not actual[grid[:, 0] > 1.0 + 1e-9].any()


def test_frontier_respects_custom_constraints():
    """frontier() must filter through the subclass's own admissibility."""
    from repro.core.requirements import ApplicationRequirements
    from repro.core.tradeoff import EnergyDelayGame
    from repro.protocols.xmac import XMACModel

    class CappedXMAC(XMACModel):
        def constraint_margins(self, params):
            margins = super().constraint_margins(params)
            margins.append(1.0 - self.coerce(params)[self.WAKEUP_INTERVAL])
            return margins

    scenario = default_scenario()
    requirements = ApplicationRequirements(
        energy_budget=0.06, max_delay=6.0, sampling_rate=scenario.sampling_rate
    )
    capped = EnergyDelayGame(CappedXMAC(scenario), requirements)
    for point in capped.frontier(samples_per_dimension=40):
        assert point.parameters["wakeup_interval"] <= 1.0 + 1e-9


def test_unit_burstiness_is_bit_identical_to_periodic():
    """``burstiness=1.0`` must not move any capacity margin by a single bit."""
    plain = Scenario(sampling_rate=1.0 / 600.0)
    explicit = plain.with_burstiness(1.0)
    for protocol in available_protocols():
        a = create_protocol(protocol, plain)
        b = create_protocol(protocol, explicit)
        grid = a.parameter_space.grid(7)
        assert np.array_equal(a.capacity_margin_many(grid), b.capacity_margin_many(grid))
