"""Tests for the protocol registry."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.protocols import DutyCycledMACModel, XMACModel
from repro.protocols.registry import (
    PAPER_PROTOCOL_NAMES,
    available_protocols,
    canonical_name,
    create_protocol,
    paper_protocols,
    protocol_class,
    register_protocol,
    unregister_protocol,
)


class TestRegistry:
    def test_available_protocols_contains_the_paper_three(self):
        names = available_protocols()
        for name in PAPER_PROTOCOL_NAMES:
            assert name in names

    def test_canonical_name_handles_aliases_and_case(self):
        assert canonical_name("X-MAC") == "xmac"
        assert canonical_name("scp") == "scpmac"
        assert canonical_name("LMAC") == "lmac"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_name("zigbee-mac")

    def test_create_protocol_binds_scenario(self, small_scenario):
        model = create_protocol("xmac", small_scenario)
        assert isinstance(model, XMACModel)
        assert model.scenario is small_scenario

    def test_create_protocol_forwards_kwargs(self, small_scenario):
        model = create_protocol("dmac", small_scenario, max_frame=4.0)
        assert model.parameter_space["frame_length"].upper == pytest.approx(4.0)

    def test_paper_protocols_returns_three_models(self, small_scenario):
        models = paper_protocols(small_scenario)
        assert list(models) == list(PAPER_PROTOCOL_NAMES)

    def test_protocol_class_lookup(self):
        assert protocol_class("xmac") is XMACModel

    def test_register_and_unregister_custom_protocol(self, small_scenario):
        class ToyMAC(XMACModel):
            name = "Toy-MAC"
            family = "toy"

        register_protocol("toymac", ToyMAC)
        try:
            assert "toymac" in available_protocols()
            model = create_protocol("toymac", small_scenario)
            assert isinstance(model, ToyMAC)
        finally:
            unregister_protocol("toymac")
        assert "toymac" not in available_protocols()

    def test_register_rejects_duplicates_and_non_models(self):
        with pytest.raises(ConfigurationError):
            register_protocol("xmac", XMACModel)
        with pytest.raises(ConfigurationError):
            register_protocol("notamodel", dict)  # type: ignore[arg-type]

    def test_builtin_protocols_cannot_be_unregistered(self):
        with pytest.raises(ConfigurationError):
            unregister_protocol("xmac")
