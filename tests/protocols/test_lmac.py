"""LMAC specific model tests."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.network.topology import RingTopology
from repro.protocols.lmac import LMACModel
from repro.scenario import Scenario


class TestLMACModel:
    def test_two_tunable_parameters(self, lmac: LMACModel):
        assert lmac.parameter_space.names == [LMACModel.SLOT_LENGTH, LMACModel.SLOT_COUNT]

    def test_min_slot_count_covers_two_hop_neighbourhood(self, lmac: LMACModel):
        assert lmac.min_slot_count == 2 * lmac.scenario.density + 1

    def test_slot_count_parameter_is_integer_typed(self, lmac: LMACModel):
        assert lmac.parameter_space[LMACModel.SLOT_COUNT].integer is True

    def test_frame_length_is_slot_product(self, lmac: LMACModel):
        params = {"slot_length": 0.02, "slot_count": 15.0}
        assert lmac.frame_length(params) == pytest.approx(0.3)

    def test_latency_grows_with_frame_length(self, lmac: LMACModel):
        short = lmac.system_latency({"slot_length": 0.01, "slot_count": 13.0})
        long = lmac.system_latency({"slot_length": 0.05, "slot_count": 20.0})
        assert long > short

    def test_hop_latency_is_half_frame_plus_data(self, lmac: LMACModel):
        params = {"slot_length": 0.02, "slot_count": 15.0}
        data = lmac.scenario.packets.data_airtime(lmac.scenario.radio)
        assert lmac.hop_latency(params, 1) == pytest.approx(0.5 * 0.3 + data)

    def test_longer_slots_reduce_idle_energy(self, lmac: LMACModel):
        count = float(lmac.min_slot_count)
        short_slots = lmac.system_energy({"slot_length": lmac.min_slot_length, "slot_count": count})
        long_slots = lmac.system_energy({"slot_length": lmac.max_slot_length, "slot_count": count})
        assert long_slots < short_slots

    def test_control_listening_dominates_energy_at_low_traffic(self, lmac: LMACModel):
        breakdown = lmac.energy_breakdown(
            {"slot_length": lmac.min_slot_length, "slot_count": float(lmac.min_slot_count)},
            lmac.scenario.depth,
        )
        assert breakdown.carrier_sense > breakdown.transmit
        assert breakdown.overhear == 0.0

    def test_control_tx_charged_every_frame(self, lmac: LMACModel):
        params = {"slot_length": 0.02, "slot_count": float(lmac.min_slot_count)}
        assert lmac.energy_breakdown(params, 1).sync_transmit > 0

    def test_energy_roughly_independent_of_slot_count(self, lmac: LMACModel):
        # The idle cost per second is (N-1)/N * listen / slot, nearly flat in N.
        few = lmac.system_energy({"slot_length": 0.02, "slot_count": float(lmac.min_slot_count)})
        many = lmac.system_energy({"slot_length": 0.02, "slot_count": float(lmac.max_slot_count)})
        assert many == pytest.approx(few, rel=0.1)

    def test_empty_parameter_space_detected(self):
        scenario = Scenario(topology=RingTopology(depth=3, density=40), sampling_rate=1.0 / 600.0)
        model = LMACModel(scenario, max_frame=0.3)
        with pytest.raises(ConfigurationError):
            _ = model.parameter_space

    def test_invalid_guard_time_rejected(self, small_scenario):
        with pytest.raises(ConfigurationError):
            LMACModel(small_scenario, guard_time=-0.001)

    def test_capacity_margin_negative_for_very_long_frames(self):
        scenario = Scenario(topology=RingTopology(depth=5, density=8), sampling_rate=1.0 / 100.0)
        model = LMACModel(scenario, max_frame=10.0)
        params = {"slot_length": model.max_slot_length, "slot_count": float(model.min_slot_count)}
        assert model.capacity_margin(params) < 0


class TestSCPMAC:
    def test_scpmac_cheaper_transmissions_than_xmac(self, scpmac, xmac):
        # At the same polling interval, SCP-MAC's tone is much shorter than
        # X-MAC's expected strobe train, so its transmit energy is lower.
        params_scp = {"poll_interval": 1.0}
        params_xmac = {"wakeup_interval": 1.0}
        assert (
            scpmac.energy_breakdown(params_scp, 1).transmit
            < xmac.energy_breakdown(params_xmac, 1).transmit
        )

    def test_scpmac_pays_sync_overhead(self, scpmac):
        breakdown = scpmac.energy_breakdown({"poll_interval": 1.0}, 1)
        assert breakdown.sync_transmit > 0
        assert breakdown.sync_receive > 0

    def test_scpmac_latency_similar_shape_to_xmac(self, scpmac):
        fast = scpmac.system_latency({"poll_interval": 0.2})
        slow = scpmac.system_latency({"poll_interval": 2.0})
        assert slow > fast
