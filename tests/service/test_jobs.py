"""JobQueue: dedup by spec hash, state machine, journal replay."""

from __future__ import annotations

import json

import pytest

from repro.api import ExperimentSpec
from repro.service import JobError, JobQueue

SOLVE = {
    "kind": "solve",
    "scenario": {"depth": 4, "density": 6, "sampling_period": 600.0},
    "protocols": ["xmac"],
    "solver": {"grid_points": 20},
}


def spec_of(**overrides) -> ExperimentSpec:
    return ExperimentSpec.from_dict({**SOLVE, **overrides})


RESULT_TEXT = json.dumps({"schema": "repro.api.resultset", "rows": []}) + "\n"


class TestSubmit:
    def test_job_id_is_the_spec_hash(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, created = queue.submit(spec_of())
        assert created
        assert job.job_id == spec_of().spec_hash()
        assert job.state == "queued"

    def test_resubmit_is_idempotent(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, created_first = queue.submit(spec_of())
        second, created_second = queue.submit(spec_of())
        assert created_first and not created_second
        assert first is second
        assert queue.counts()["queued"] == 1

    def test_runtime_policy_does_not_fork_jobs(self, tmp_path):
        # The hash excludes runtime, so workers/cache variants share a job.
        queue = JobQueue(tmp_path)
        _, created_first = queue.submit(spec_of(runtime={"workers": 1}))
        _, created_second = queue.submit(spec_of(runtime={"workers": 4}))
        assert created_first and not created_second

    def test_different_specs_are_different_jobs(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, _ = queue.submit(spec_of())
        second, created = queue.submit(spec_of(protocols=["lmac"]))
        assert created
        assert first.job_id != second.job_id

    def test_resubmit_requeues_failed_job(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(spec_of())
        queue.claim(timeout=0)
        queue.fail(job.job_id, "boom", "RuntimeError")
        resubmitted, created = queue.submit(spec_of())
        assert not created
        assert resubmitted.state == "queued"
        assert resubmitted.error == ""
        assert resubmitted.attempts == 1  # history survives the requeue


class TestStateMachine:
    def test_claim_is_fifo(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, _ = queue.submit(spec_of())
        second, _ = queue.submit(spec_of(protocols=["lmac"]))
        assert queue.claim(timeout=0).job_id == first.job_id
        assert queue.claim(timeout=0).job_id == second.job_id
        assert queue.claim(timeout=0) is None

    def test_finish_publishes_result(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(spec_of())
        queue.claim(timeout=0)
        done = queue.finish(job.job_id, RESULT_TEXT, {"units": 1})
        assert done.state == "done"
        assert done.progress == {"units": 1}
        assert queue.result_text(job.job_id) == RESULT_TEXT

    def test_finish_requires_running(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(spec_of())
        with pytest.raises(JobError, match="cannot finish"):
            queue.finish(job.job_id, RESULT_TEXT)

    def test_cancel_queued(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(spec_of())
        assert queue.cancel(job.job_id).state == "cancelled"
        assert queue.claim(timeout=0) is None

    def test_cancel_running_is_rejected(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(spec_of())
        queue.claim(timeout=0)
        with pytest.raises(JobError, match="only queued jobs"):
            queue.cancel(job.job_id)

    def test_cancel_unknown_is_rejected(self, tmp_path):
        with pytest.raises(JobError, match="unknown job"):
            JobQueue(tmp_path).cancel("deadbeef")

    def test_result_text_of_unfinished_job_is_none(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(spec_of())
        assert queue.result_text(job.job_id) is None


class TestReplay:
    def test_done_jobs_survive_restart(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(spec_of())
        queue.claim(timeout=0)
        queue.finish(job.job_id, RESULT_TEXT, {"units": 1})
        queue.close()

        reopened = JobQueue(tmp_path)
        replayed = reopened.get(job.job_id)
        assert replayed.state == "done"
        assert replayed.progress == {"units": 1}
        assert reopened.result_text(job.job_id) == RESULT_TEXT
        assert reopened.requeued == 0

    def test_running_job_is_requeued_after_crash(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(spec_of())
        queue.claim(timeout=0)
        queue.close()  # crash with the job mid-flight

        reopened = JobQueue(tmp_path)
        assert reopened.requeued == 1
        assert reopened.get(job.job_id).state == "queued"
        assert reopened.claim(timeout=0).job_id == job.job_id

    def test_queued_jobs_keep_fifo_order_after_restart(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, _ = queue.submit(spec_of())
        second, _ = queue.submit(spec_of(protocols=["lmac"]))
        queue.close()

        reopened = JobQueue(tmp_path)
        assert reopened.claim(timeout=0).job_id == first.job_id
        assert reopened.claim(timeout=0).job_id == second.job_id

    def test_failed_and_cancelled_are_sticky(self, tmp_path):
        queue = JobQueue(tmp_path)
        failed, _ = queue.submit(spec_of())
        queue.claim(timeout=0)
        queue.fail(failed.job_id, "boom", "RuntimeError")
        cancelled, _ = queue.submit(spec_of(protocols=["lmac"]))
        queue.cancel(cancelled.job_id)
        queue.close()

        reopened = JobQueue(tmp_path)
        assert reopened.get(failed.job_id).state == "failed"
        assert reopened.get(failed.job_id).error == "boom"
        assert reopened.get(cancelled.job_id).state == "cancelled"
        assert reopened.claim(timeout=0) is None

    def test_torn_final_line_is_tolerated(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(spec_of())
        queue.close()
        journal = tmp_path / "jobs.jsonl"
        journal.write_text(journal.read_text() + '{"event": "state", "job_')

        reopened = JobQueue(tmp_path)
        assert reopened.get(job.job_id).state == "queued"

    def test_corrupt_middle_line_raises(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(spec_of())
        queue.close()
        journal = tmp_path / "jobs.jsonl"
        journal.write_text("garbage\n" + journal.read_text())
        with pytest.raises(JobError, match="corrupt journal line 1"):
            JobQueue(tmp_path)

    def test_done_without_result_file_is_requeued(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(spec_of())
        queue.claim(timeout=0)
        queue.finish(job.job_id, RESULT_TEXT)
        queue.close()
        (tmp_path / "results" / f"{job.job_id}.json").unlink()

        reopened = JobQueue(tmp_path)
        assert reopened.requeued == 1
        assert reopened.get(job.job_id).state == "queued"
