"""Experiment service end-to-end over real HTTP.

Every test binds a ThreadingHTTPServer on an ephemeral loopback port and
drives it through :class:`ServiceClient` — the same path CI's identity
check uses.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import ExperimentSpec, run as run_experiment
from repro.api.engine import runner_for
from repro.service import (
    ExperimentService,
    JobFailedError,
    JobQueue,
    ServiceClient,
    ServiceError,
)
from repro.store import ResultStore

SOLVE = {
    "kind": "solve",
    "scenario": {"depth": 4, "density": 6, "sampling_period": 600.0},
    "protocols": ["xmac"],
    "solver": {"grid_points": 12},
}

SWEEP = {
    "kind": "sweep",
    "scenario": {"depth": 4, "density": 6, "sampling_period": 600.0},
    "protocols": ["xmac"],
    "sweep": {"parameter": "max_delay", "values": [3.0, 6.0]},
    "solver": {"grid_points": 12},
}

INFEASIBLE = {
    **SOLVE,
    "requirements": {"energy_budget": 1e-9, "max_delay": 1e-3},
    "solver": {"grid_points": 8},
}


@pytest.fixture
def service(tmp_path):
    with ExperimentService(store_dir=tmp_path / "store", workers=2) as service:
        yield service


@pytest.fixture
def client(service):
    return ServiceClient(service.url, timeout=30.0)


@pytest.fixture
def idle_service(tmp_path, monkeypatch):
    """A service whose workers never start: jobs stay deterministically queued."""
    service = ExperimentService(store_dir=tmp_path / "store", workers=1)
    monkeypatch.setattr(service.pool, "start", lambda: None)
    with service:
        yield service


def direct_bytes(spec_dict, store_dir) -> bytes:
    """What `repro run spec.json --store DIR --out` would write."""
    spec = ExperimentSpec.from_dict(spec_dict)
    runner = runner_for(spec, store=ResultStore(store_dir))
    return run_experiment(spec, runner=runner).json_text().encode("utf-8")


class TestHappyPath:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["jobs"]["queued"] == 0

    def test_submit_run_fetch_byte_identity(self, tmp_path, client):
        raw = client.run(SWEEP, timeout=120)
        assert raw == direct_bytes(SWEEP, tmp_path / "direct")
        payload = json.loads(raw.decode("utf-8"))
        assert payload["schema"] == "repro.api.resultset"
        assert payload["spec_sha256"] == ExperimentSpec.from_dict(SWEEP).spec_hash()

    def test_resubmit_after_completion_is_warm(self, tmp_path, client, service):
        first = client.run(SOLVE, timeout=120)
        job, created = client.submit(SOLVE)
        assert not created
        assert job["state"] == "done"
        assert client.result_bytes(str(job["job_id"])) == first
        # A fresh queue on the same store answers entirely from the store.
        with ExperimentService(
            store_dir=service.store.root, queue_dir=tmp_path / "queue2", workers=1
        ) as warm:
            warm_client = ServiceClient(warm.url)
            warm_client.run(SOLVE, timeout=120)
            progress = warm_client.status(str(job["job_id"]))["progress"]
            assert progress["store_misses"] == 0
            assert progress["store_puts"] == 0
            assert progress["store_hits"] > 0

    def test_status_reports_progress_and_store(self, client):
        job, _ = client.submit(SOLVE)
        client.wait(str(job["job_id"]), timeout=120)
        status = client.status(str(job["job_id"]))
        assert status["state"] == "done"
        assert status["progress"]["units"] == 1
        assert status["store"]["store_puts"] >= 1

    def test_queue_lists_jobs(self, client):
        job, _ = client.submit(SOLVE)
        client.wait(str(job["job_id"]), timeout=120)
        snapshot = client.queue()
        assert snapshot["counts"]["done"] == 1
        assert [item["job_id"] for item in snapshot["jobs"]] == [job["job_id"]]


class TestConcurrentSubmission:
    def test_n_threads_one_execution_identical_payloads(self, client):
        barrier = threading.Barrier(8)
        outcomes = []

        def submit_and_fetch():
            barrier.wait()
            job, created = client.submit(SWEEP)
            raw = client.wait(str(job["job_id"]), timeout=120)
            outcomes.append((created, raw))

        threads = [threading.Thread(target=submit_and_fetch) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(180)
        assert len(outcomes) == 8
        assert sum(1 for created, _ in outcomes) == 8
        assert sum(1 for created, _ in outcomes if created) == 1
        payloads = {raw for _, raw in outcomes}
        assert len(payloads) == 1  # everyone got the same bytes
        job_id = ExperimentSpec.from_dict(SWEEP).spec_hash()
        assert client.status(job_id)["attempts"] == 1  # executed exactly once


class TestKillAndRestart:
    def test_restart_replays_journal_and_completes_queued_job(self, tmp_path):
        store_dir = tmp_path / "store"
        queue_dir = tmp_path / "queue"
        # The "killed" server: jobs journaled, nothing executed.
        ResultStore(store_dir)
        queue = JobQueue(queue_dir)
        queue.submit(ExperimentSpec.from_dict(SOLVE))
        running, _ = queue.submit(ExperimentSpec.from_dict(SWEEP))
        queue.claim(timeout=0)  # SOLVE was mid-flight when the crash hit
        queue.close()

        with ExperimentService(
            store_dir=store_dir, queue_dir=queue_dir, workers=2
        ) as service:
            assert service.queue.requeued == 1
            client = ServiceClient(service.url)
            solve_id = ExperimentSpec.from_dict(SOLVE).spec_hash()
            assert client.wait(solve_id, timeout=120) == direct_bytes(
                SOLVE, tmp_path / "direct-solve"
            )
            assert client.wait(str(running.job_id), timeout=120) == direct_bytes(
                SWEEP, tmp_path / "direct-sweep"
            )


class TestErrorStatuses:
    def test_submit_broken_json_is_400(self, service):
        client = ServiceClient(service.url)
        status, _ = client._request("POST", "/jobs", b"{not json")
        assert status == 400

    def test_submit_bad_spec_is_400_with_kind(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "frobnicate"})
        assert excinfo.value.status == 400
        assert excinfo.value.payload["error_kind"] == "ConfigurationError"

    def test_unknown_job_is_404(self, client):
        for call in (client.status, client.result_bytes, client.cancel):
            with pytest.raises(ServiceError) as excinfo:
                call("deadbeef")
            assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/nonsense")
        assert excinfo.value.status == 404

    def test_failed_job_result_is_409(self, client):
        job, _ = client.submit(INFEASIBLE)
        with pytest.raises(JobFailedError) as excinfo:
            client.wait(str(job["job_id"]), timeout=120)
        assert excinfo.value.status == 409
        assert excinfo.value.payload["error_kind"] == "InfeasibleProblemError"
        assert client.status(str(job["job_id"]))["state"] == "failed"

    def test_pending_result_is_202_and_cancel_roundtrip(self, idle_service):
        client = ServiceClient(idle_service.url)
        job, _ = client.submit(SOLVE)
        assert client.result_bytes(str(job["job_id"])) is None  # 202
        assert client.status(str(job["job_id"]))["state"] == "queued"
        cancelled = client.cancel(str(job["job_id"]))
        assert cancelled["state"] == "cancelled"
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(str(job["job_id"]))  # no longer queued
        assert excinfo.value.status == 409

    def test_resubmit_requeues_failed_job(self, client):
        job, _ = client.submit(INFEASIBLE)
        with pytest.raises(JobFailedError):
            client.wait(str(job["job_id"]), timeout=120)
        resubmitted, created = client.submit(INFEASIBLE)
        assert not created
        assert resubmitted["state"] in ("queued", "running", "failed")
        with pytest.raises(JobFailedError):  # same spec, same verdict
            client.wait(str(job["job_id"]), timeout=120)
        assert client.status(str(job["job_id"]))["attempts"] == 2
