"""Tests for the figure reproduction drivers (reduced grids for speed)."""

from __future__ import annotations

import pytest

from repro.experiments.config import (
    FIGURE_DELAY_BOUNDS,
    FIGURE_ENERGY_BUDGETS,
    FIGURE_ENERGY_BUDGET_FIXED,
    FIGURE_MAX_DELAY_FIXED,
    figure_scenario,
)
from repro.experiments.figure1 import figure1_rows, reproduce_figure1
from repro.experiments.figure2 import figure2_rows, reproduce_figure2

#: Reduced settings so the experiment tests stay fast; the benches run the
#: full grids.
FAST = {"grid_points_per_dimension": 30}
PROTOCOLS = ("xmac", "dmac")
DELAYS = (1.0, 3.0, 6.0)
BUDGETS = (0.01, 0.03, 0.06)


@pytest.fixture(scope="module")
def figure1_results():
    return reproduce_figure1(protocols=PROTOCOLS, delay_bounds=DELAYS, **FAST)


@pytest.fixture(scope="module")
def figure2_results():
    return reproduce_figure2(protocols=PROTOCOLS, energy_budgets=BUDGETS, **FAST)


class TestFigureConfig:
    def test_paper_grids(self):
        assert FIGURE_DELAY_BOUNDS == (1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
        assert FIGURE_ENERGY_BUDGETS == (0.01, 0.02, 0.03, 0.04, 0.05, 0.06)
        assert FIGURE_ENERGY_BUDGET_FIXED == 0.06
        assert FIGURE_MAX_DELAY_FIXED == 6.0

    def test_figure_scenario_shape(self):
        scenario = figure_scenario()
        assert scenario.depth == 5
        assert scenario.density == 8
        assert scenario.sampling_period == 3600.0


class TestFigure1:
    def test_one_sweep_per_protocol(self, figure1_results):
        assert set(figure1_results) == set(PROTOCOLS)
        for sweep in figure1_results.values():
            assert len(sweep.solutions) == len(DELAYS)
            assert not sweep.infeasible_values

    def test_relaxing_delay_bound_favours_energy_player(self, figure1_results):
        for sweep in figure1_results.values():
            stars = [solution.energy_star for solution in sweep.solutions]
            assert stars[0] >= stars[1] >= stars[2]

    def test_agreed_delay_respects_each_bound(self, figure1_results):
        for sweep in figure1_results.values():
            for bound, solution in zip(DELAYS, sweep.solutions):
                assert solution.delay_star <= bound * 1.001

    def test_rows_are_flat_and_complete(self, figure1_results):
        rows = figure1_rows(figure1_results)
        assert len(rows) == len(PROTOCOLS) * len(DELAYS)
        assert {"E_best", "E_worst", "E_star", "L_star"} <= set(rows[0])


class TestFigure2:
    def test_one_sweep_per_protocol(self, figure2_results):
        assert set(figure2_results) == set(PROTOCOLS)
        for sweep in figure2_results.values():
            assert len(sweep.solutions) == len(BUDGETS)

    def test_raising_budget_favours_delay_player(self, figure2_results):
        for sweep in figure2_results.values():
            stars = [solution.delay_star for solution in sweep.solutions]
            assert stars[0] >= stars[1] >= stars[2]

    def test_agreed_energy_respects_each_budget(self, figure2_results):
        for sweep in figure2_results.values():
            for budget, solution in zip(BUDGETS, sweep.solutions):
                assert solution.energy_star <= budget * 1.001

    def test_rows_are_flat_and_complete(self, figure2_results):
        rows = figure2_rows(figure2_results)
        assert len(rows) == len(PROTOCOLS) * len(BUDGETS)
        assert "energy_budget" in rows[0]
