"""Integration tests: full game pipeline, model-vs-simulation, CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.validation import validate_protocol
from repro.cli import main as cli_main
from repro.core.requirements import ApplicationRequirements
from repro.core.tradeoff import EnergyDelayGame
from repro.gametheory.game import BargainingGame
from repro.gametheory.nash import nash_bargaining_solution
from repro.network.topology import RingTopology
from repro.protocols import DMACModel, LMACModel, XMACModel
from repro.protocols.registry import paper_protocols
from repro.scenario import Scenario
from repro.simulation import SimulationConfig

FAST = {"grid_points_per_dimension": 40, "random_starts": 2}


class TestFullGamePipeline:
    def test_all_paper_protocols_produce_consistent_solutions(self, small_scenario):
        requirements = ApplicationRequirements(
            energy_budget=0.06, max_delay=6.0, sampling_rate=small_scenario.sampling_rate
        )
        for model in paper_protocols(small_scenario).values():
            solution = EnergyDelayGame(model, requirements, **FAST).solve()
            assert solution.energy_best <= solution.energy_star <= solution.energy_worst * 1.001
            assert solution.delay_best <= solution.delay_star <= solution.delay_worst * 1.001
            assert abs(solution.bargaining.fairness_residual) < 0.15

    def test_continuous_nbs_agrees_with_discrete_nbs_on_sampled_frontier(self, xmac):
        """The (P4) solver and the generic finite-game NBS must agree."""
        requirements = ApplicationRequirements(energy_budget=0.06, max_delay=6.0)
        game = EnergyDelayGame(xmac, requirements, **FAST)
        solution = game.solve()

        # Build the discrete game from a dense sample of admissible points.
        space = xmac.parameter_space
        grid = np.linspace(space.lower_bounds[0], space.upper_bounds[0], 400)
        costs = []
        for value in grid:
            point = [float(value)]
            if not xmac.is_admissible(point):
                continue
            energy = xmac.system_energy(point)
            delay = xmac.system_latency(point)
            if energy <= solution.energy_worst and delay <= solution.delay_worst:
                costs.append((energy, delay))
        finite_game = BargainingGame.from_costs(
            costs, disagreement_costs=(solution.energy_worst, solution.delay_worst)
        )
        discrete = nash_bargaining_solution(finite_game)
        discrete_energy, discrete_delay = -discrete.payoff[0], -discrete.payoff[1]
        assert discrete_energy == pytest.approx(solution.energy_star, rel=0.05)
        assert discrete_delay == pytest.approx(solution.delay_star, rel=0.05)

    def test_energy_ordering_of_protocols_at_delay_optimum(self, paper_scenario):
        """X-MAC spends the least energy when pushed to its fastest setting."""
        requirements = ApplicationRequirements(
            energy_budget=0.06, max_delay=6.0, sampling_rate=paper_scenario.sampling_rate
        )
        worst = {}
        for name, model in paper_protocols(paper_scenario).items():
            solution = EnergyDelayGame(model, requirements, **FAST).solve()
            worst[name] = solution.energy_worst
        assert worst["xmac"] < worst["dmac"]
        assert worst["xmac"] < worst["lmac"]


class TestModelAgainstSimulation:
    @pytest.mark.parametrize(
        "model_class, params",
        [
            (XMACModel, {"wakeup_interval": 0.4}),
            (DMACModel, {"frame_length": 1.0}),
            (LMACModel, None),
        ],
    )
    def test_analytical_model_matches_simulation(self, model_class, params):
        scenario = Scenario(topology=RingTopology(depth=4, density=6), sampling_rate=1.0 / 600.0)
        model = model_class(scenario)
        if params is None:
            params = {"slot_length": 0.02, "slot_count": float(model.min_slot_count)}
        report = validate_protocol(model, params, SimulationConfig(horizon=4000.0, seed=3))
        assert report.delivery_ratio > 0.95
        assert report.energy_error < 0.30, report.as_dict()
        assert report.delay_error < 0.50, report.as_dict()


class TestCLI:
    def test_protocols_command(self, capsys):
        assert cli_main(["protocols"]) == 0
        output = capsys.readouterr().out
        assert "xmac" in output and "lmac" in output

    def test_solve_command(self, capsys):
        code = cli_main(
            [
                "solve",
                "xmac",
                "--max-delay",
                "3.0",
                "--depth",
                "4",
                "--density",
                "6",
                "--sampling-period",
                "600",
                "--grid-points",
                "30",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "E_star" in output and "L_star" in output

    def test_sweep_command_parallel_matches_serial(self, capsys):
        common = [
            "sweep",
            "xmac",
            "--vary",
            "max-delay",
            "--values",
            "2.0",
            "4.0",
            "--depth",
            "4",
            "--density",
            "6",
            "--sampling-period",
            "600",
            "--grid-points",
            "25",
            "--no-cache",
        ]
        assert cli_main(common + ["--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert cli_main(common + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        # Identical rows; only the trailing "# runtime:" line may differ.
        strip = lambda out: [l for l in out.splitlines() if not l.startswith("# runtime:")]
        assert strip(serial) == strip(parallel)
        assert "# runtime: serial[1]" in serial
        assert "# runtime: process[2]" in parallel

    def test_bad_workers_is_a_clean_error(self, capsys):
        code = cli_main(["figure1", "--workers", "-1"])
        assert code == 2
        assert "workers must be >= 0" in capsys.readouterr().err

    def test_unknown_protocol_is_a_clean_error(self, capsys):
        code = cli_main(["solve", "nosuchproto"])
        assert code == 2
        assert "unknown protocol" in capsys.readouterr().err

    def test_sweep_command_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        code = cli_main(
            [
                "sweep",
                "xmac",
                "--vary",
                "max-delay",
                "--values",
                "2.0",
                "4.0",
                "--depth",
                "4",
                "--density",
                "6",
                "--sampling-period",
                "600",
                "--grid-points",
                "30",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        assert "E_star" in capsys.readouterr().out

    def test_validate_command(self, capsys):
        code = cli_main(
            [
                "validate",
                "xmac",
                "--depth",
                "3",
                "--density",
                "4",
                "--sampling-period",
                "300",
                "--horizon",
                "600",
            ]
        )
        assert code == 0
        assert "energy_error" in capsys.readouterr().out
