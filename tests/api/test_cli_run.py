"""CLI `run` subcommand: exit codes and error paths.

A bad spec must exit nonzero with a one-line ``error:`` message on stderr —
never a traceback.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_ERROR, EXIT_NOT_WARM, EXIT_OK, main as cli_main


def write_spec(tmp_path, payload, name="spec.json"):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


GOOD_SOLVE = {
    "kind": "solve",
    "scenario": {"depth": 4, "density": 6, "sampling_period": 600.0},
    "protocols": ["xmac"],
    "solver": {"grid_points": 20},
}


class TestRunHappyPath:
    def test_solve_spec_runs(self, capsys, tmp_path):
        assert cli_main(["run", write_spec(tmp_path, GOOD_SOLVE)]) == 0
        out = capsys.readouterr().out
        assert "E_star" in out
        assert "sha256" in out

    def test_plan_only_does_not_solve(self, capsys, tmp_path):
        spec = dict(GOOD_SOLVE, solver={"grid_points": 2000})  # huge grid: would be slow
        assert cli_main(["run", write_spec(tmp_path, spec), "--plan-only"]) == 0
        out = capsys.readouterr().out
        assert "grid_points" in out
        assert "E_star" not in out

    def test_csv_and_out_exports(self, capsys, tmp_path):
        csv_path = tmp_path / "rows.csv"
        json_path = tmp_path / "result.json"
        code = cli_main(
            [
                "run",
                write_spec(tmp_path, GOOD_SOLVE),
                "--csv",
                str(csv_path),
                "--out",
                str(json_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == "repro.api.resultset"

    def test_workers_override_is_reported(self, capsys, tmp_path):
        spec = {
            "kind": "sweep",
            "scenario": {"depth": 4, "density": 6, "sampling_period": 600.0},
            "protocols": ["xmac"],
            "sweep": {"parameter": "max_delay", "values": [2.0, 4.0]},
            "solver": {"grid_points": 15},
        }
        path = write_spec(tmp_path, spec)
        assert cli_main(["run", path, "--workers", "2", "--no-cache"]) == 0
        assert "# runtime: process[2]" in capsys.readouterr().out

    def test_shard_runs_a_subset(self, capsys, tmp_path):
        spec = {
            "kind": "sweep",
            "scenario": {"depth": 4, "density": 6, "sampling_period": 600.0},
            "protocols": ["xmac"],
            "sweep": {"parameter": "max_delay", "values": [2.0, 4.0, 6.0]},
            "solver": {"grid_points": 15},
        }
        path = write_spec(tmp_path, spec)
        assert cli_main(["run", path, "--shard", "0/2", "--plan-only"]) == 0
        out = capsys.readouterr().out
        assert "2 unit(s)" in out


class TestRunErrorPaths:
    def assert_clean_error(self, capsys, argv, match):
        code = cli_main(argv)
        captured = capsys.readouterr()
        assert code == 2
        assert match in captured.err
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    def test_missing_spec_file(self, capsys, tmp_path):
        self.assert_clean_error(
            capsys, ["run", str(tmp_path / "nope.json")], "spec file not found"
        )

    def test_invalid_json(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        self.assert_clean_error(capsys, ["run", str(path)], "invalid JSON")

    def test_unknown_workload_kind(self, capsys, tmp_path):
        path = write_spec(tmp_path, {"kind": "frobnicate"})
        self.assert_clean_error(capsys, ["run", path], "unknown workload kind")

    def test_unknown_protocol(self, capsys, tmp_path):
        path = write_spec(tmp_path, dict(GOOD_SOLVE, protocols=["nosuchmac"]))
        self.assert_clean_error(capsys, ["run", path], "unknown protocol")

    def test_infeasible_solve_spec(self, capsys, tmp_path):
        infeasible = dict(
            GOOD_SOLVE,
            requirements={"energy_budget": 1e-9, "max_delay": 1e-3},
            solver={"grid_points": 10},
        )
        path = write_spec(tmp_path, infeasible)
        code = cli_main(["run", path])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    def test_bad_shard_argument(self, capsys, tmp_path):
        path = write_spec(tmp_path, GOOD_SOLVE)
        self.assert_clean_error(capsys, ["run", path, "--shard", "half"], "--shard")

    def test_unsupported_suffix(self, capsys, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("kind: solve")
        self.assert_clean_error(capsys, ["run", str(path)], "unsupported spec file type")

    def test_bad_workers_override(self, capsys, tmp_path):
        path = write_spec(tmp_path, GOOD_SOLVE)
        self.assert_clean_error(
            capsys, ["run", path, "--workers", "-2"], "workers must be >= 0"
        )

    def test_unknown_solver_method(self, capsys, tmp_path):
        spec = dict(GOOD_SOLVE, solver={"grid_points": 20, "method": "magic"})
        self.assert_clean_error(
            capsys, ["run", write_spec(tmp_path, spec)], "unknown solver.method 'magic'"
        )

    def test_unknown_runtime_solver_method(self, capsys, tmp_path):
        spec = dict(GOOD_SOLVE, runtime={"solver_method": "magic"})
        self.assert_clean_error(
            capsys, ["run", write_spec(tmp_path, spec)], "runtime.solver_method"
        )

    @pytest.mark.parametrize(
        "knob, bad, floor",
        [
            ("coarse_points", 1, 2),
            ("refine_rounds", 0, 1),
            ("top_k", "many", 1),
        ],
    )
    def test_invalid_adaptive_option(self, capsys, tmp_path, knob, bad, floor):
        spec = dict(GOOD_SOLVE, solver={"grid_points": 20, knob: bad})
        self.assert_clean_error(
            capsys,
            ["run", write_spec(tmp_path, spec)],
            f"solver.{knob} must be an integer >= {floor}, got {bad!r}",
        )


class TestExitCodeContract:
    """Pin the documented exit codes the experiment service maps to HTTP.

    ``repro serve`` turns these into statuses (0 → 200, 2 → 400 at submit /
    a failed job at run time, 3 → the warm-store assertion in CI), so the
    server-adjacent error paths must keep their codes.
    """

    INFEASIBLE = dict(
        GOOD_SOLVE,
        requirements={"energy_budget": 1e-9, "max_delay": 1e-3},
        solver={"grid_points": 10},
    )

    @pytest.mark.parametrize(
        "payload, extra_argv, expected",
        [
            pytest.param(GOOD_SOLVE, [], EXIT_OK, id="ok"),
            pytest.param(None, [], EXIT_ERROR, id="unreadable-spec"),
            pytest.param("{not json", [], EXIT_ERROR, id="broken-json"),
            pytest.param({"kind": "frobnicate"}, [], EXIT_ERROR, id="unknown-kind"),
            pytest.param(INFEASIBLE, [], EXIT_ERROR, id="infeasible-solve"),
            pytest.param(
                GOOD_SOLVE,
                ["--solver-method", "adaptive"],
                EXIT_OK,
                id="adaptive-override-ok",
            ),
            pytest.param(
                dict(GOOD_SOLVE, solver={"grid_points": 10, "method": "magic"}),
                [],
                EXIT_ERROR,
                id="unknown-solver-method",
            ),
            pytest.param(
                dict(GOOD_SOLVE, solver={"grid_points": 10, "top_k": 0}),
                [],
                EXIT_ERROR,
                id="bad-adaptive-knob",
            ),
            pytest.param(
                GOOD_SOLVE,
                ["--store", "{tmp}/store", "--require-warm"],
                EXIT_NOT_WARM,
                id="cold-store-require-warm",
            ),
        ],
    )
    def test_exit_code(self, capsys, tmp_path, payload, extra_argv, expected):
        if payload is None:
            path = str(tmp_path / "missing.json")
        elif isinstance(payload, str):
            spec_path = tmp_path / "broken.json"
            spec_path.write_text(payload)
            path = str(spec_path)
        else:
            path = write_spec(tmp_path, payload)
        argv = ["run", path] + [arg.format(tmp=tmp_path) for arg in extra_argv]
        assert cli_main(argv) == expected
        captured = capsys.readouterr()
        if expected == EXIT_ERROR:
            assert captured.err.startswith("error: ")
            assert "Traceback" not in captured.err


class TestNameListSplitting:
    """--scenarios/--protocols accept space- and/or comma-separated names."""

    @pytest.mark.parametrize(
        "values, expected",
        [
            (None, ()),
            (["xmac", "lmac"], ("xmac", "lmac")),
            (["xmac,lmac,dmac,scpmac"], ("xmac", "lmac", "dmac", "scpmac")),
            (["xmac,lmac", "scpmac"], ("xmac", "lmac", "scpmac")),
            (["xmac, lmac,"], ("xmac", "lmac")),
        ],
    )
    def test_split_names(self, values, expected):
        from repro.cli import _split_names

        assert _split_names(values) == expected
