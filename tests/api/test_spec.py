"""ExperimentSpec: parsing, fluent construction, serialization, hashing."""

from __future__ import annotations

import json

import pytest

from repro.api import WORKLOAD_KINDS, ExperimentSpec
from repro.exceptions import ConfigurationError


class TestFromDict:
    def test_minimal_spec_round_trips(self):
        spec = ExperimentSpec.from_dict({"kind": "solve", "protocols": ["xmac"]})
        assert spec.kind == "solve"
        assert spec.protocols == ("xmac",)
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_every_kind_is_accepted(self):
        for kind in WORKLOAD_KINDS:
            assert ExperimentSpec.from_dict({"kind": kind}).kind == kind

    def test_unknown_kind_is_rejected_with_the_known_list(self):
        with pytest.raises(ConfigurationError, match="unknown workload kind"):
            ExperimentSpec.from_dict({"kind": "frobnicate"})
        with pytest.raises(ConfigurationError, match="solve"):
            ExperimentSpec.from_dict({"kind": "frobnicate"})

    def test_missing_kind_is_rejected(self):
        with pytest.raises(ConfigurationError, match="needs a 'kind'"):
            ExperimentSpec.from_dict({"protocols": ["xmac"]})

    def test_unknown_top_level_key_is_named(self):
        with pytest.raises(ConfigurationError, match="workers_count"):
            ExperimentSpec.from_dict({"kind": "solve", "workers_count": 4})

    def test_unknown_nested_key_is_named(self):
        with pytest.raises(ConfigurationError, match="horizons"):
            ExperimentSpec.from_dict({"kind": "validate", "simulation": {"horizons": 1}})

    def test_sweep_parameter_aliases_are_normalized(self):
        spec = ExperimentSpec.from_dict(
            {"kind": "sweep", "sweep": {"parameter": "max-delay", "values": [1.0]}}
        )
        assert spec.sweep.parameter == "max_delay"

    def test_sweep_needs_parameter_and_values(self):
        with pytest.raises(ConfigurationError, match="parameter"):
            ExperimentSpec.from_dict({"kind": "sweep", "sweep": {"values": [1.0]}})
        with pytest.raises(ConfigurationError, match="empty"):
            ExperimentSpec.from_dict(
                {"kind": "sweep", "sweep": {"parameter": "max_delay", "values": []}}
            )

    def test_inline_scenario_keys_are_checked(self):
        with pytest.raises(ConfigurationError, match="rings"):
            ExperimentSpec.from_dict({"kind": "solve", "scenario": {"rings": 5}})

    def test_non_mapping_payload_is_rejected(self):
        with pytest.raises(ConfigurationError, match="mapping"):
            ExperimentSpec.from_dict(["kind", "solve"])  # type: ignore[arg-type]


class TestLoaders:
    def test_from_json(self):
        spec = ExperimentSpec.from_json('{"kind": "figure1"}')
        assert spec.kind == "figure1"

    def test_from_json_syntax_error_is_clean(self):
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            ExperimentSpec.from_json("{not json}")

    def test_from_toml(self):
        pytest.importorskip("tomllib")
        spec = ExperimentSpec.from_toml(
            'kind = "sweep"\nprotocols = ["xmac"]\n\n[sweep]\nparameter = "max_delay"\nvalues = [2.0, 4.0]\n'
        )
        assert spec.sweep.values == (2.0, 4.0)

    def test_from_file_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"kind": "suite"}))
        assert ExperimentSpec.from_file(path).kind == "suite"

    def test_from_file_missing(self, tmp_path):
        with pytest.raises(ConfigurationError, match="spec file not found"):
            ExperimentSpec.from_file(tmp_path / "nope.json")

    def test_from_file_unsupported_suffix(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("kind: solve")
        with pytest.raises(ConfigurationError, match="unsupported spec file type"):
            ExperimentSpec.from_file(path)


class TestFluent:
    def test_fluent_builder_matches_dict_form(self):
        fluent = (
            ExperimentSpec.experiment("sweep", name="demo")
            .with_scenario("paper-default")
            .with_protocols("xmac")
            .with_sweep("max_delay", [2.0, 4.0])
            .with_requirements(energy_budget=0.05)
            .with_solver(grid_points=30)
            .with_runtime(workers=2, cache=False)
        )
        parsed = ExperimentSpec.from_dict(
            {
                "kind": "sweep",
                "name": "demo",
                "scenario": "paper-default",
                "protocols": ["xmac"],
                "sweep": {"parameter": "max_delay", "values": [2.0, 4.0]},
                "requirements": {"energy_budget": 0.05},
                "solver": {"grid_points": 30},
                "runtime": {"workers": 2, "cache": False},
            }
        )
        assert fluent == parsed

    def test_fluent_steps_do_not_mutate(self):
        base = ExperimentSpec.experiment("solve")
        derived = base.with_protocols("xmac")
        assert base.protocols == ()
        assert derived.protocols == ("xmac",)

    def test_with_requirements_merges_like_the_other_builders(self):
        spec = (
            ExperimentSpec.experiment("solve")
            .with_requirements(energy_budget=0.02)
            .with_requirements(max_delay=2.0)
        )
        assert spec.requirements.energy_budget == 0.02
        assert spec.requirements.max_delay == 2.0

    def test_with_solver_merges_extra_options(self):
        spec = (
            ExperimentSpec.experiment("solve")
            .with_solver(grid_points=20, random_starts=2)
            .with_solver(random_starts=3)
        )
        assert spec.solver.grid_points == 20
        assert spec.solver.options == {"random_starts": 3}


class TestHash:
    def test_hash_is_stable_and_64_hex_chars(self):
        spec = ExperimentSpec.experiment("suite").with_protocols("xmac")
        assert spec.spec_hash() == spec.spec_hash()
        assert len(spec.spec_hash()) == 64
        int(spec.spec_hash(), 16)  # hex

    def test_hash_changes_with_the_workload(self):
        base = ExperimentSpec.experiment("suite").with_protocols("xmac")
        assert base.spec_hash() != base.with_protocols("lmac").spec_hash()
        assert base.spec_hash() != base.with_solver(grid_points=10).spec_hash()

    def test_runtime_policy_does_not_change_provenance(self):
        base = ExperimentSpec.experiment("suite").with_protocols("xmac")
        parallel = base.with_runtime(workers=8, cache=False)
        assert base.spec_hash() == parallel.spec_hash()
