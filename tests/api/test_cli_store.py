"""CLI store integration: flag matrix, require-warm, store subcommands."""

from __future__ import annotations

import filecmp
import json

import pytest

from repro.cli import main as cli_main

SWEEP = {
    "kind": "sweep",
    "name": "cli-store-sweep",
    "scenario": {"depth": 4, "density": 6, "sampling_period": 600.0},
    "protocols": ["xmac"],
    "sweep": {"parameter": "max_delay", "values": [2.0, 4.0]},
    "solver": {"grid_points": 15},
}

CAMPAIGN = {
    "kind": "campaign",
    "name": "cli-store-campaign",
    "scenarios": ["paper-default"],
    "protocols": ["xmac", "lmac"],
    "campaign": {"replications": 2, "base_seed": 1, "horizon": 300.0},
    "solver": {"grid_points": 15},
}


def write_spec(tmp_path, payload, name="spec.json"):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def trees_identical(left, right):
    left_files = {p.relative_to(left): p for p in sorted(left.rglob("*")) if p.is_file()}
    right_files = {p.relative_to(right): p for p in sorted(right.rglob("*")) if p.is_file()}
    return left_files.keys() == right_files.keys() and all(
        filecmp.cmp(str(left_files[k]), str(right_files[k]), shallow=False)
        for k in left_files
    )


class TestFlagMatrix:
    def test_neither_flag(self, capsys, tmp_path):
        assert cli_main(["run", write_spec(tmp_path, SWEEP)]) == 0
        out = capsys.readouterr().out
        assert "# store:" not in out
        assert "+store" not in out

    def test_store_alone_cold_then_warm(self, capsys, tmp_path):
        spec = write_spec(tmp_path, SWEEP)
        store = str(tmp_path / "store")
        assert cli_main(["run", spec, "--store", store]) == 0
        cold = capsys.readouterr().out
        assert "# store: 0 hits / 2 misses / 2 puts" in cold
        assert "+cache+store" in cold
        assert cli_main(["run", spec, "--store", store]) == 0
        warm = capsys.readouterr().out
        assert "# store: 2 hits / 0 misses / 0 puts" in warm

    def test_no_cache_alone(self, capsys, tmp_path):
        assert cli_main(["run", write_spec(tmp_path, SWEEP), "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "# store:" not in out
        assert "+cache" not in out

    def test_both_flags_bypass_the_store_entirely(self, capsys, tmp_path):
        spec = write_spec(tmp_path, SWEEP)
        store = str(tmp_path / "store")
        assert cli_main(["run", spec, "--store", store, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "# --no-cache: solve cache and result store both bypassed" in out
        assert "# store:" not in out
        assert not (tmp_path / "store").exists()  # never even created

    def test_runtime_commands_accept_store(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        code = cli_main(
            ["sweep", "xmac", "--vary", "max-delay", "--values", "2.0", "4.0",
             "--depth", "4", "--density", "6", "--sampling-period", "600",
             "--grid-points", "15", "--store", store]
        )
        assert code == 0
        assert "# store: 0 hits / 2 misses / 2 puts" in capsys.readouterr().out


class TestRequireWarm:
    def test_cold_run_exits_3(self, capsys, tmp_path):
        spec = write_spec(tmp_path, SWEEP)
        store = str(tmp_path / "store")
        assert cli_main(["run", spec, "--store", store, "--require-warm"]) == 3
        assert "not warm" in capsys.readouterr().err

    def test_warm_run_exits_0(self, capsys, tmp_path):
        spec = write_spec(tmp_path, SWEEP)
        store = str(tmp_path / "store")
        assert cli_main(["run", spec, "--store", store]) == 0
        capsys.readouterr()
        assert cli_main(["run", spec, "--store", store, "--require-warm"]) == 0
        assert "satisfied" in capsys.readouterr().out

    def test_without_store_is_a_usage_error(self, capsys, tmp_path):
        spec = write_spec(tmp_path, SWEEP)
        assert cli_main(["run", spec, "--require-warm"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_with_no_cache_is_a_usage_error(self, capsys, tmp_path):
        spec = write_spec(tmp_path, SWEEP)
        store = str(tmp_path / "store")
        code = cli_main(["run", spec, "--store", store, "--no-cache", "--require-warm"])
        assert code == 2


class TestWarmArtifactIdentity:
    def test_warm_rerun_writes_identical_bytes(self, capsys, tmp_path):
        spec = write_spec(tmp_path, SWEEP)
        store = str(tmp_path / "store")
        cold_out = tmp_path / "cold.json"
        warm_out = tmp_path / "warm.json"
        assert cli_main(["run", spec, "--store", store, "--out", str(cold_out)]) == 0
        assert cli_main(["run", spec, "--store", store, "--out", str(warm_out)]) == 0
        assert cold_out.read_bytes() == warm_out.read_bytes()


class TestShardMergeIdentity:
    def test_sharded_campaign_merges_to_cold_identical_state(self, capsys, tmp_path):
        spec = write_spec(tmp_path, CAMPAIGN)
        cold_store = tmp_path / "cold-store"
        cold_out = tmp_path / "cold.json"
        assert cli_main(
            ["run", spec, "--store", str(cold_store), "--out", str(cold_out)]
        ) == 0

        # The 1×2 campaign round-robins into two rectangular 1×1 shards.
        for index in range(2):
            assert cli_main(
                ["run", spec, "--shard", f"{index}/2",
                 "--store", str(tmp_path / f"shard{index}")]
            ) == 0
        capsys.readouterr()

        merged = tmp_path / "merged"
        assert cli_main(
            ["store", "merge", str(tmp_path / "shard0"), str(tmp_path / "shard1"),
             "--out", str(merged)]
        ) == 0
        assert "# merged 2 store(s)" in capsys.readouterr().out
        assert trees_identical(cold_store, merged)

        # Replaying the full spec against the merged store is fully warm
        # and writes a byte-identical artifact.
        warm_out = tmp_path / "warm.json"
        code = cli_main(
            ["run", spec, "--store", str(merged), "--require-warm",
             "--out", str(warm_out)]
        )
        assert code == 0
        assert cold_out.read_bytes() == warm_out.read_bytes()


class TestStoreSubcommands:
    def _populate(self, tmp_path, capsys):
        spec = write_spec(tmp_path, SWEEP)
        store = tmp_path / "store"
        assert cli_main(["run", spec, "--store", str(store)]) == 0
        capsys.readouterr()
        return store

    def test_stats(self, capsys, tmp_path):
        store = self._populate(tmp_path, capsys)
        assert cli_main(["store", "stats", str(store)]) == 0
        out = capsys.readouterr().out
        assert "2 record(s) (solve: 2)" in out
        assert "bytes" in out  # the stats() snapshot includes disk usage

    def test_verify_clean(self, capsys, tmp_path):
        store = self._populate(tmp_path, capsys)
        assert cli_main(["store", "verify", str(store)]) == 0
        assert "all clean" in capsys.readouterr().out

    def test_verify_corrupt_exits_1(self, capsys, tmp_path):
        store = self._populate(tmp_path, capsys)
        victim = next((store / "records").rglob("*.json"))
        victim.write_text("{ not json")
        assert cli_main(["store", "verify", str(store)]) == 1
        assert "corrupt" in capsys.readouterr().out

    def test_gc_drop_corrupt(self, capsys, tmp_path):
        store = self._populate(tmp_path, capsys)
        victim = next((store / "records").rglob("*.json"))
        victim.write_text("{ not json")
        (store / "tmp" / "orphan.tmp").write_text("partial")
        assert cli_main(["store", "gc", str(store), "--drop-corrupt"]) == 0
        out = capsys.readouterr().out
        assert "removed 1 temp file(s), 1 corrupt record(s)" in out
        assert cli_main(["store", "verify", str(store)]) == 0

    def test_merge_conflict_is_a_cli_error(self, capsys, tmp_path):
        from repro.store import ResultStore, key_digest

        digest = key_digest(("replication", "contested"))
        payload = {"seed": 1, "energy": 1.0, "delay": None, "delivery_ratio": 1.0,
                   "generated": 1, "delivered": 1, "dropped": 0}
        ResultStore(tmp_path / "a").put(digest, payload, kind="replication")
        ResultStore(tmp_path / "b").put(
            digest, dict(payload, energy=2.0), kind="replication"
        )
        code = cli_main(
            ["store", "merge", str(tmp_path / "a"), str(tmp_path / "b"),
             "--out", str(tmp_path / "out")]
        )
        assert code == 2
        assert "merge conflict" in capsys.readouterr().err

    def test_maintenance_on_missing_store_is_an_error(self, capsys, tmp_path):
        assert cli_main(["store", "stats", str(tmp_path / "nowhere")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
