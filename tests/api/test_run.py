"""run(): equivalence with the legacy entry points + ResultSet behaviour.

The acceptance bar of the declarative pipeline is *bit-identical numeric
results* versus the entry points it wraps, at workers=1.  Every test here
solves with small grids to stay fast.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.sweep import sweep_delay_bound
from repro.api import ExperimentSpec, plan, run
from repro.exceptions import ConfigurationError, InfeasibleProblemError
from repro.experiments.figure1 import figure1_rows, reproduce_figure1
from repro.protocols.registry import create_protocol, register_protocol, unregister_protocol
from repro.protocols.xmac import XMACModel
from repro.runtime import build_runner
from repro.scenarios import ScenarioSuite
from repro.scenarios.presets import scenario_preset
from repro.validation import CampaignSpec, run_campaign

#: Small inline scenario shared by the fast tests (matches the
#: ``small_scenario`` fixture).
SMALL = {"depth": 4, "density": 6, "sampling_period": 600.0, "radio": "cc2420"}

GRID = 25


def fresh_runner():
    """A private, cache-isolated serial runner (no process-wide memo)."""
    return build_runner(workers=1, use_cache=False)


class TestSolveKind:
    def test_solve_matches_direct_game(self, xmac, requirements):
        from repro.core.tradeoff import EnergyDelayGame

        spec = (
            ExperimentSpec.experiment("solve")
            .with_scenario(SMALL)
            .with_protocols("xmac")
            .with_requirements(energy_budget=0.06, max_delay=6.0)
            .with_solver(grid_points=GRID)
        )
        result = run(spec, runner=fresh_runner())
        direct = EnergyDelayGame(
            xmac, requirements, grid_points_per_dimension=GRID
        ).solve()
        solution = result.records[0].value
        assert solution.energy_star == direct.energy_star
        assert solution.delay_star == direct.delay_star
        assert solution.energy_best == direct.energy_best
        assert result.rows()[0]["feasible"] is True

    def test_infeasible_solve_raises(self):
        spec = (
            ExperimentSpec.experiment("solve")
            .with_scenario(SMALL)
            .with_protocols("xmac")
            .with_requirements(energy_budget=1e-9, max_delay=1e-3)
            .with_solver(grid_points=10)
        )
        with pytest.raises(InfeasibleProblemError):
            run(spec, runner=fresh_runner())

    def test_registered_custom_protocol_is_spec_addressable(self, small_scenario):
        class ToyMAC(XMACModel):
            name = "Toy-MAC"
            family = "toy"

        register_protocol("toymac", ToyMAC, overwrite=True)
        try:
            # overwrite=True makes re-registration idempotent.
            register_protocol("toymac", ToyMAC, overwrite=True)
            spec = (
                ExperimentSpec.experiment("solve")
                .with_scenario(SMALL)
                .with_protocols("toymac")
                .with_solver(grid_points=GRID)
            )
            result = run(spec, runner=fresh_runner())
            assert result.records[0].value.protocol == "Toy-MAC"
        finally:
            unregister_protocol("toymac")


class TestSweepKind:
    def test_sweep_matches_legacy_sweep(self, xmac):
        spec = (
            ExperimentSpec.experiment("sweep")
            .with_scenario(SMALL)
            .with_protocols("xmac")
            .with_sweep("max_delay", [2.0, 4.0])
            .with_solver(grid_points=GRID)
        )
        result = run(spec, runner=fresh_runner())
        legacy = sweep_delay_bound(
            xmac,
            energy_budget=0.06,
            delay_bounds=[2.0, 4.0],
            runner=fresh_runner(),
            grid_points_per_dimension=GRID,
        )
        assert result.raw["xmac"].series() == legacy.series()

    def test_infeasible_values_are_rows_not_errors(self):
        spec = (
            ExperimentSpec.experiment("sweep")
            .with_scenario(SMALL)
            .with_protocols("xmac")
            .with_sweep("max_delay", [0.002, 4.0])
            .with_solver(grid_points=15)
        )
        result = run(spec, runner=fresh_runner())
        rows = result.rows()
        assert rows[0]["feasible"] is False
        assert rows[1]["feasible"] is True
        assert len(result.failed_records) == 1
        assert result.raw["xmac"].infeasible_values == [0.002]


class TestFigureKinds:
    def test_figure1_matches_legacy_driver(self):
        spec = (
            ExperimentSpec.experiment("figure1")
            .with_protocols("xmac")
            .with_sweep("max_delay", [2.0, 6.0])
            .with_solver(grid_points=GRID)
        )
        result = run(spec, runner=fresh_runner())
        legacy = reproduce_figure1(
            protocols=("xmac",),
            delay_bounds=[2.0, 6.0],
            grid_points_per_dimension=GRID,
            runner=fresh_runner(),
        )
        assert result.raw["xmac"].series() == legacy["xmac"].series()
        assert len(result.rows()) == len(figure1_rows(legacy))

    def test_figure2_matches_legacy_driver(self):
        from repro.experiments.figure2 import reproduce_figure2

        spec = (
            ExperimentSpec.experiment("figure2")
            .with_protocols("xmac")
            .with_sweep("energy_budget", [0.02, 0.06])
            .with_solver(grid_points=GRID)
        )
        result = run(spec, runner=fresh_runner())
        legacy = reproduce_figure2(
            protocols=("xmac",),
            energy_budgets=[0.02, 0.06],
            grid_points_per_dimension=GRID,
            runner=fresh_runner(),
        )
        assert result.raw["xmac"].series() == legacy["xmac"].series()


class TestSuiteKind:
    SCENARIOS = ("paper-default", "high-rate")
    PROTOCOLS = ("xmac", "lmac")

    def spec(self):
        return (
            ExperimentSpec.experiment("suite")
            .with_scenarios(*self.SCENARIOS)
            .with_protocols(*self.PROTOCOLS)
            .with_solver(grid_points=GRID)
        )

    def test_suite_matches_scenario_suite(self):
        result = run(self.spec(), runner=fresh_runner())
        legacy = ScenarioSuite(
            scenarios=self.SCENARIOS,
            protocols=self.PROTOCOLS,
            runner=fresh_runner(),
            grid_points_per_dimension=GRID,
        ).run()
        assert result.raw.rows() == legacy.rows()
        assert result.rows() == legacy.rows()

    def test_filtered_suite_plan_runs_the_subset(self):
        sub = plan(self.spec()).select(protocol="xmac")
        result = run(sub, runner=fresh_runner())
        assert [record.unit.protocol for record in result.records] == ["xmac", "xmac"]

    def test_parallel_suite_is_bit_identical(self):
        serial = run(self.spec(), runner=build_runner(workers=1, use_cache=False))
        parallel = run(self.spec(), runner=build_runner(workers=2, use_cache=False))
        assert serial.rows() == parallel.rows()


class TestValidateKind:
    def test_validate_matches_legacy_spot_check(self, xmac):
        from repro.analysis.validation import validate_protocol
        from repro.simulation.runner import SimulationConfig

        spec = (
            ExperimentSpec.experiment("validate")
            .with_scenario(SMALL)
            .with_protocols("xmac")
            .with_simulation(horizon=400.0, seed=3)
        )
        result = run(spec, runner=fresh_runner())
        space = xmac.parameter_space
        legacy = validate_protocol(
            xmac,
            space.to_dict(space.midpoint()),
            SimulationConfig(horizon=400.0, seed=3),
        )
        report = result.records[0].value
        assert report.simulated_energy == legacy.simulated_energy
        assert report.simulated_delay == legacy.simulated_delay
        assert result.rows()[0]["energy_error"] == legacy.energy_error


class TestCampaignKind:
    def spec(self):
        return (
            ExperimentSpec.experiment("campaign")
            .with_scenarios("paper-default", "high-rate")
            .with_protocols("xmac")
            .with_campaign(replications=2, base_seed=1, horizon=600.0)
            .with_solver(grid_points=20)
        )

    def test_campaign_matches_legacy_artifact_byte_for_byte(self):
        result = run(self.spec(), runner=fresh_runner())
        legacy = run_campaign(
            CampaignSpec(
                scenarios=("paper-default", "high-rate"),
                protocols=("xmac",),
                replications=2,
                base_seed=1,
                horizon=600.0,
                grid_points_per_dimension=20,
            ),
            fresh_runner(),
        )
        assert json.dumps(result.raw.as_dict(), sort_keys=True) == json.dumps(
            legacy.as_dict(), sort_keys=True
        )

    def test_empty_campaign_plan_runs_nothing(self):
        # A shard beyond the unit count must not fall through to the
        # "empty means all scenarios/protocols" campaign defaults.
        empty = plan(self.spec()).shard(1, 3).shard(0, 2).filter(lambda _: False)
        result = run(empty, runner=fresh_runner())
        assert result.records == []
        assert result.raw is None

    def test_non_rectangular_campaign_plan_is_rejected(self):
        lopsided = plan(self.spec()).filter(
            lambda unit: not (unit.scenario == "high-rate")
        )
        full = plan(self.spec())
        # Dropping a whole scenario keeps the plan rectangular…
        assert run(lopsided, runner=fresh_runner()).raw.cells
        # …dropping a single cell of a 2×1 grid does not exist; fake a
        # non-rectangular shape with two protocols instead.
        spec = self.spec().with_protocols("xmac", "lmac")
        broken = plan(spec).filter(lambda unit: unit.index != 1)
        with pytest.raises(ConfigurationError, match="rectangular"):
            run(broken, runner=fresh_runner())
        assert full.count == 2


class TestResultSet:
    @pytest.fixture
    def result(self):
        spec = (
            ExperimentSpec.experiment("sweep", name="demo")
            .with_scenario(SMALL)
            .with_protocols("xmac")
            .with_sweep("max_delay", [2.0, 4.0])
            .with_solver(grid_points=15)
        )
        return run(spec, runner=fresh_runner())

    def test_summary_counts(self, result):
        summary = result.summary()
        assert summary["kind"] == "sweep"
        assert summary["name"] == "demo"
        assert summary["units"] == 2
        assert summary["ok"] == 2
        assert summary["spec_sha256"] == result.provenance

    def test_to_csv(self, result, tmp_path):
        path = result.to_csv(tmp_path / "out.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("scenario,protocol,max_delay")

    def test_to_json_payload_is_versioned(self, result, tmp_path):
        path = result.to_json(tmp_path / "out.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.api.resultset"
        assert payload["schema_version"] == 1
        assert payload["spec_sha256"] == result.provenance
        assert len(payload["rows"]) == 2

    def test_metadata_reports_the_runner(self, result):
        assert result.metadata["runner"] == "serial[1]"

    def test_mixed_rows_format(self, result):
        from repro.analysis.reporting import format_table

        # Heterogeneous union with an unrelated row shape must not raise.
        table = format_table(result.rows() + [{"scenario": "x", "note": "hi"}])
        assert "note" in table.splitlines()[0]
