"""Plan expansion: unit counts, resolution errors, filter/shard."""

from __future__ import annotations

import pytest

from repro.api import ExperimentSpec, plan
from repro.exceptions import ConfigurationError
from repro.scenarios import ScenarioSuite, available_scenarios
from repro.protocols.registry import available_protocols


class TestCounts:
    def test_solve_plan_has_one_unit_per_protocol(self):
        spec = ExperimentSpec.experiment("solve").with_protocols("xmac", "dmac")
        units = plan(spec).units
        assert [unit.protocol for unit in units] == ["xmac", "dmac"]
        assert all(unit.kind == "game-solve" for unit in units)

    def test_sweep_plan_is_protocol_major(self):
        spec = (
            ExperimentSpec.experiment("sweep")
            .with_protocols("xmac", "lmac")
            .with_sweep("max_delay", [2.0, 4.0])
        )
        units = plan(spec).units
        assert [(u.protocol, u.settings["value"]) for u in units] == [
            ("xmac", 2.0),
            ("xmac", 4.0),
            ("lmac", 2.0),
            ("lmac", 4.0),
        ]

    def test_suite_plan_matches_scenario_suite_pair_count(self):
        spec = (
            ExperimentSpec.experiment("suite")
            .with_scenarios("paper-default", "high-rate", "bursty")
            .with_protocols("xmac", "lmac")
        )
        suite = ScenarioSuite(
            scenarios=("paper-default", "high-rate", "bursty"),
            protocols=("xmac", "lmac"),
        )
        assert plan(spec).count == suite.pair_count

    def test_suite_plan_defaults_cover_everything(self):
        expected = len(available_scenarios()) * len(available_protocols())
        assert plan(ExperimentSpec.experiment("suite")).count == expected

    def test_figure_plans_default_to_the_paper_grid(self):
        assert plan(ExperimentSpec.experiment("figure1")).count == 3 * 6
        assert plan(ExperimentSpec.experiment("figure2")).count == 3 * 6

    def test_campaign_plan_is_one_unit_per_cell(self):
        spec = (
            ExperimentSpec.experiment("campaign")
            .with_scenarios("paper-default", "high-rate")
            .with_protocols("xmac")
            .with_campaign(replications=3)
        )
        units = plan(spec).units
        assert len(units) == 2
        assert all(unit.kind == "campaign-cell" for unit in units)
        assert all(unit.settings["replications"] == 3 for unit in units)

    def test_validate_plan_is_one_unit_per_protocol(self):
        spec = ExperimentSpec.experiment("validate").with_protocols("xmac", "lmac")
        units = plan(spec).units
        assert [unit.kind for unit in units] == ["simulation", "simulation"]


class TestResolutionErrors:
    def test_unknown_protocol(self):
        spec = ExperimentSpec.experiment("solve").with_protocols("nosuchmac")
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            plan(spec)

    def test_unknown_scenario_preset(self):
        spec = ExperimentSpec.experiment("suite").with_scenarios("nosuchscenario")
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            plan(spec)

    def test_unknown_radio_in_inline_scenario(self):
        spec = (
            ExperimentSpec.experiment("solve")
            .with_protocols("xmac")
            .with_scenario({"radio": "cc9999"})
        )
        with pytest.raises(ConfigurationError, match="unknown radio"):
            plan(spec)

    def test_solve_without_protocols(self):
        with pytest.raises(ConfigurationError, match="at least one protocol"):
            plan(ExperimentSpec.experiment("solve"))

    def test_sweep_without_axis(self):
        spec = ExperimentSpec.experiment("sweep").with_protocols("xmac")
        with pytest.raises(ConfigurationError, match="needs a sweep axis"):
            plan(spec)

    def test_figure_axis_mismatch(self):
        spec = ExperimentSpec.experiment("figure1").with_sweep("energy_budget", [0.02])
        with pytest.raises(ConfigurationError, match="sweeps 'max_delay'"):
            plan(spec)

    def test_validate_rejects_analytical_only_protocols(self, analytical_only_protocol):
        spec = ExperimentSpec.experiment("validate").with_protocols(
            analytical_only_protocol
        )
        # The error names the protocols that *do* have a simulator, so the
        # spec author learns the fix without a deep runtime failure.
        with pytest.raises(ConfigurationError, match="no simulated behaviour.*scpmac"):
            plan(spec)

    def test_campaign_rejects_analytical_only_protocols(self, analytical_only_protocol):
        spec = (
            ExperimentSpec.experiment("campaign")
            .with_scenarios("paper-default")
            .with_protocols(analytical_only_protocol)
        )
        with pytest.raises(ConfigurationError, match="no simulated behaviour"):
            plan(spec)

    def test_validate_and_campaign_accept_scpmac(self):
        validate = ExperimentSpec.experiment("validate").with_protocols("scpmac")
        assert plan(validate).protocol_names == ["scpmac"]
        campaign = (
            ExperimentSpec.experiment("campaign")
            .with_scenarios("paper-default")
            .with_protocols("xmac", "scpmac")
        )
        assert plan(campaign).protocol_names == ["xmac", "scpmac"]

    def test_protocol_aliases_resolve(self):
        spec = ExperimentSpec.experiment("solve").with_protocols("x-mac")
        assert plan(spec).units[0].protocol == "xmac"


class TestFilterShard:
    @pytest.fixture
    def figure_plan(self):
        return plan(ExperimentSpec.experiment("figure1"))

    def test_select_by_protocol(self, figure_plan):
        sub = figure_plan.select(protocol="xmac")
        assert sub.count == 6
        assert sub.protocol_names == ["xmac"]

    def test_filter_preserves_original_indices(self, figure_plan):
        sub = figure_plan.filter(lambda unit: unit.index % 2 == 1)
        assert [unit.index for unit in sub.units] == list(range(1, 18, 2))

    def test_shards_partition_the_plan(self, figure_plan):
        shards = [figure_plan.shard(i, 4) for i in range(4)]
        assert sum(shard.count for shard in shards) == figure_plan.count
        seen = sorted(unit.index for shard in shards for unit in shard.units)
        assert seen == list(range(figure_plan.count))

    def test_shard_bounds_are_checked(self, figure_plan):
        with pytest.raises(ConfigurationError, match="shard count"):
            figure_plan.shard(0, 0)
        with pytest.raises(ConfigurationError, match="shard index"):
            figure_plan.shard(4, 4)

    def test_plan_rows_are_printable(self, figure_plan):
        from repro.analysis.reporting import format_table

        table = format_table(figure_plan.rows())
        assert "xmac" in table
        assert "parameter" in table.splitlines()[0]
