"""Unit tests for the bargaining solution concepts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import BargainingError
from repro.gametheory.egalitarian import egalitarian_solution
from repro.gametheory.game import BargainingGame
from repro.gametheory.kalai_smorodinsky import kalai_smorodinsky_solution
from repro.gametheory.nash import nash_bargaining_solution, nash_product
from repro.gametheory.utilitarian import utilitarian_solution


def dense_triangle(limit: float = 10.0, step: float = 0.25) -> BargainingGame:
    """Dense sample of the triangle u1 + u2 <= limit, u >= 0."""
    grid = np.arange(0.0, limit + step, step)
    payoffs = [(u1, u2) for u1 in grid for u2 in grid if u1 + u2 <= limit + 1e-9]
    return BargainingGame(payoffs, disagreement=(0.0, 0.0))


def asymmetric_triangle() -> BargainingGame:
    """Feasible set u1 / 8 + u2 / 2 <= 1 (player 1 can gain much more)."""
    grid1 = np.linspace(0.0, 8.0, 65)
    grid2 = np.linspace(0.0, 2.0, 41)
    payoffs = [(u1, u2) for u1 in grid1 for u2 in grid2 if u1 / 8.0 + u2 / 2.0 <= 1.0 + 1e-12]
    return BargainingGame(payoffs, disagreement=(0.0, 0.0))


class TestNashSolution:
    def test_symmetric_triangle_splits_evenly(self):
        point = nash_bargaining_solution(dense_triangle())
        assert point.payoff[0] == pytest.approx(5.0, abs=0.3)
        assert point.payoff[1] == pytest.approx(5.0, abs=0.3)

    def test_asymmetric_triangle_equalises_relative_share(self):
        # On u1/8 + u2/2 <= 1 the Nash solution is (4, 1): half of each max.
        point = nash_bargaining_solution(asymmetric_triangle())
        assert point.payoff[0] == pytest.approx(4.0, abs=0.3)
        assert point.payoff[1] == pytest.approx(1.0, abs=0.15)

    def test_solution_is_pareto_efficient(self):
        game = dense_triangle()
        point = nash_bargaining_solution(game)
        assert game.is_pareto_efficient(point.index, tolerance=1e-9)

    def test_nash_product_clips_negative_gains(self):
        products = nash_product(np.array([[-1.0, 5.0], [2.0, 3.0]]))
        assert products[0] == 0.0
        assert products[1] == 6.0

    def test_requires_rational_alternative(self):
        game = BargainingGame([(0.0, 0.0)], disagreement=(1.0, 1.0))
        with pytest.raises(BargainingError):
            nash_bargaining_solution(game)

    def test_moving_disagreement_point_shifts_solution(self):
        game_neutral = dense_triangle()
        game_biased = BargainingGame(game_neutral.payoffs, disagreement=(4.0, 0.0))
        neutral = nash_bargaining_solution(game_neutral)
        biased = nash_bargaining_solution(game_biased)
        # A better threat for player 1 moves the agreement in its favour.
        assert biased.payoff[0] > neutral.payoff[0]


class TestOtherSolutions:
    def test_kalai_smorodinsky_equalises_relative_gains(self):
        point = kalai_smorodinsky_solution(asymmetric_triangle())
        relative = (point.payoff[0] / 8.0, point.payoff[1] / 2.0)
        assert relative[0] == pytest.approx(relative[1], abs=0.05)

    def test_egalitarian_equalises_absolute_gains(self):
        point = egalitarian_solution(asymmetric_triangle())
        assert point.payoff[0] == pytest.approx(point.payoff[1], abs=0.2)

    def test_utilitarian_maximises_total_gain(self):
        game = asymmetric_triangle()
        point = utilitarian_solution(game)
        totals = game.payoffs.sum(axis=1)
        assert point.payoff[0] + point.payoff[1] == pytest.approx(float(totals.max()))

    def test_all_rules_agree_on_symmetric_games(self):
        game = dense_triangle()
        nash = nash_bargaining_solution(game)
        kalai = kalai_smorodinsky_solution(game)
        egal = egalitarian_solution(game)
        for point in (kalai, egal):
            assert point.payoff[0] == pytest.approx(nash.payoff[0], abs=0.3)
            assert point.payoff[1] == pytest.approx(nash.payoff[1], abs=0.3)

    def test_rules_reject_hopeless_games(self):
        game = BargainingGame([(0.0, 0.0)], disagreement=(1.0, 1.0))
        for rule in (kalai_smorodinsky_solution, egalitarian_solution, utilitarian_solution):
            with pytest.raises(BargainingError):
                rule(game)

    def test_rules_differ_on_asymmetric_games(self):
        game = asymmetric_triangle()
        nash = nash_bargaining_solution(game)
        egal = egalitarian_solution(game)
        assert abs(nash.payoff[0] - egal.payoff[0]) > 0.5
