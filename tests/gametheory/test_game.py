"""Unit tests for the bargaining-game container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import BargainingError
from repro.gametheory.game import BargainingGame


@pytest.fixture
def triangle_game() -> BargainingGame:
    """Feasible set: the lattice of a right triangle u1 + u2 <= 10."""
    payoffs = [
        (u1, u2)
        for u1 in range(0, 11)
        for u2 in range(0, 11)
        if u1 + u2 <= 10
    ]
    return BargainingGame(payoffs, disagreement=(0.0, 0.0), player_names=("energy", "delay"))


class TestBargainingGame:
    def test_size_and_accessors(self, triangle_game):
        assert triangle_game.size == 66
        assert triangle_game.player_names == ("energy", "delay")
        assert np.allclose(triangle_game.disagreement, [0.0, 0.0])

    def test_gains_relative_to_disagreement(self):
        game = BargainingGame([(3.0, 4.0)], disagreement=(1.0, 1.0))
        assert np.allclose(game.gains(), [[2.0, 3.0]])

    def test_individually_rational_filtering(self):
        game = BargainingGame([(3.0, 4.0), (0.0, 9.0)], disagreement=(1.0, 1.0))
        assert game.individually_rational_indices().tolist() == [0]
        assert game.has_rational_alternative()

    def test_no_rational_alternative(self):
        game = BargainingGame([(0.0, 0.0)], disagreement=(1.0, 1.0))
        assert not game.has_rational_alternative()
        with pytest.raises(BargainingError):
            game.ideal_point()

    def test_ideal_point(self, triangle_game):
        assert np.allclose(triangle_game.ideal_point(), [10.0, 10.0])

    def test_pareto_indices_lie_on_the_hypotenuse(self, triangle_game):
        payoffs = triangle_game.payoffs
        for index in triangle_game.pareto_indices():
            assert payoffs[index][0] + payoffs[index][1] == 10

    def test_is_pareto_efficient(self, triangle_game):
        payoffs = triangle_game.payoffs
        efficient_index = int(np.argmax(payoffs[:, 0] + payoffs[:, 1]))
        assert triangle_game.is_pareto_efficient(efficient_index)
        interior_index = int(np.argmin(payoffs[:, 0] + payoffs[:, 1]))
        assert not triangle_game.is_pareto_efficient(interior_index)

    def test_from_costs_flips_sign(self):
        game = BargainingGame.from_costs([(0.01, 2.0)], disagreement_costs=(0.05, 5.0))
        assert np.allclose(game.payoffs, [[-0.01, -2.0]])
        assert np.allclose(game.gains(), [[0.04, 3.0]])

    def test_swapped_exchanges_players(self):
        game = BargainingGame([(1.0, 2.0)], disagreement=(0.5, 0.25), player_names=("a", "b"))
        swapped = game.swapped()
        assert np.allclose(swapped.payoffs, [[2.0, 1.0]])
        assert np.allclose(swapped.disagreement, [0.25, 0.5])
        assert swapped.player_names == ("b", "a")

    def test_rescaled_applies_affine_map(self):
        game = BargainingGame([(1.0, 2.0)], disagreement=(0.0, 0.0))
        rescaled = game.rescaled(scale=(2.0, 3.0), shift=(1.0, -1.0))
        assert np.allclose(rescaled.payoffs, [[3.0, 5.0]])
        assert np.allclose(rescaled.disagreement, [1.0, -1.0])

    def test_rescaled_requires_positive_scale(self):
        game = BargainingGame([(1.0, 2.0)], disagreement=(0.0, 0.0))
        with pytest.raises(BargainingError):
            game.rescaled(scale=(-1.0, 1.0), shift=(0.0, 0.0))

    def test_restricted_to_subset(self, triangle_game):
        restricted = triangle_game.restricted_to([0, 1, 2])
        assert restricted.size == 3

    def test_restricted_to_invalid_indices(self, triangle_game):
        with pytest.raises(BargainingError):
            triangle_game.restricted_to([])
        with pytest.raises(BargainingError):
            triangle_game.restricted_to([10_000])

    def test_invalid_construction(self):
        with pytest.raises(BargainingError):
            BargainingGame([], disagreement=(0.0, 0.0))
        with pytest.raises(BargainingError):
            BargainingGame([(1.0, 2.0, 3.0)], disagreement=(0.0, 0.0))
        with pytest.raises(BargainingError):
            BargainingGame([(np.nan, 1.0)], disagreement=(0.0, 0.0))
        with pytest.raises(BargainingError):
            BargainingGame([(1.0, 1.0)], disagreement=(0.0,))
