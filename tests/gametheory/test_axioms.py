"""Unit tests for the Nash-axiom checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gametheory.axioms import (
    check_all_axioms,
    check_independence_of_irrelevant_alternatives,
    check_pareto_optimality,
    check_scale_invariance,
    check_symmetry,
)
from repro.gametheory.egalitarian import egalitarian_solution
from repro.gametheory.game import BargainingGame, BargainingPoint
from repro.gametheory.nash import nash_bargaining_solution


def symmetric_game() -> BargainingGame:
    grid = np.linspace(0.0, 10.0, 41)
    payoffs = [(u1, u2) for u1 in grid for u2 in grid if u1 + u2 <= 10.0 + 1e-9]
    return BargainingGame(payoffs, disagreement=(0.0, 0.0))


class TestNashAxioms:
    def test_pareto_optimality_holds(self):
        assert check_pareto_optimality(symmetric_game()).satisfied

    def test_symmetry_holds(self):
        assert check_symmetry(symmetric_game()).satisfied

    def test_scale_invariance_holds(self):
        assert check_scale_invariance(symmetric_game()).satisfied

    def test_iia_holds(self):
        assert check_independence_of_irrelevant_alternatives(symmetric_game()).satisfied

    def test_check_all_axioms_returns_four_checks(self):
        checks = check_all_axioms(symmetric_game())
        assert set(checks) == {
            "pareto_optimality",
            "symmetry",
            "scale_invariance",
            "independence_of_irrelevant_alternatives",
        }
        assert all(check.satisfied for check in checks.values())


class TestAxiomViolationsAreDetected:
    def test_egalitarian_violates_scale_invariance(self):
        # The egalitarian rule equalises absolute gains, so rescaling one
        # player's utility changes the selected physical alternative.
        game = symmetric_game()
        check = check_scale_invariance(game, rule=egalitarian_solution, scale=(10.0, 1.0), shift=(0.0, 0.0))
        assert not check.satisfied

    def test_dictatorial_rule_violates_symmetry(self):
        def dictator(game: BargainingGame) -> BargainingPoint:
            payoffs = game.payoffs
            index = int(np.lexsort((payoffs[:, 1], -payoffs[:, 0]))[0])
            gains = game.gains()[index]
            return BargainingPoint(
                index=index,
                payoff=(float(payoffs[index][0]), float(payoffs[index][1])),
                gains=(float(gains[0]), float(gains[1])),
                objective=float(payoffs[index][0]),
            )

        assert not check_symmetry(symmetric_game(), rule=dictator).satisfied

    def test_dominated_selection_violates_pareto(self):
        def pick_origin(game: BargainingGame) -> BargainingPoint:
            payoffs = game.payoffs
            index = int(np.argmin(payoffs.sum(axis=1)))
            gains = game.gains()[index]
            return BargainingPoint(
                index=index,
                payoff=(float(payoffs[index][0]), float(payoffs[index][1])),
                gains=(float(gains[0]), float(gains[1])),
                objective=0.0,
            )

        assert not check_pareto_optimality(symmetric_game(), rule=pick_origin).satisfied

    def test_iia_keep_fraction_validated(self):
        with pytest.raises(Exception):
            check_independence_of_irrelevant_alternatives(symmetric_game(), keep_fraction=0.0)
