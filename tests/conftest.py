"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.requirements import ApplicationRequirements
from repro.network.packets import PacketModel
from repro.network.radio import cc2420
from repro.network.topology import RingTopology
from repro.protocols.dmac import DMACModel
from repro.protocols.lmac import LMACModel
from repro.protocols.scpmac import SCPMACModel
from repro.protocols.xmac import XMACModel
from repro.scenario import Scenario


@pytest.fixture
def small_scenario() -> Scenario:
    """A small, fast scenario used by most unit tests."""
    return Scenario(
        topology=RingTopology(depth=4, density=6),
        sampling_rate=1.0 / 600.0,
        radio=cc2420(),
        packets=PacketModel(payload_bytes=32.0),
    )


@pytest.fixture
def paper_scenario() -> Scenario:
    """The scenario used by the figure reproductions (slower, larger)."""
    return Scenario(
        topology=RingTopology(depth=5, density=8),
        sampling_rate=1.0 / 3600.0,
    )


@pytest.fixture
def requirements(small_scenario: Scenario) -> ApplicationRequirements:
    """Loose application requirements that every protocol can meet."""
    return ApplicationRequirements(
        energy_budget=0.06,
        max_delay=6.0,
        sampling_rate=small_scenario.sampling_rate,
    )


@pytest.fixture
def xmac(small_scenario: Scenario) -> XMACModel:
    """X-MAC model bound to the small scenario."""
    return XMACModel(small_scenario)


@pytest.fixture
def dmac(small_scenario: Scenario) -> DMACModel:
    """DMAC model bound to the small scenario."""
    return DMACModel(small_scenario)


@pytest.fixture
def lmac(small_scenario: Scenario) -> LMACModel:
    """LMAC model bound to the small scenario."""
    return LMACModel(small_scenario)


@pytest.fixture
def scpmac(small_scenario: Scenario) -> SCPMACModel:
    """SCP-MAC model bound to the small scenario."""
    return SCPMACModel(small_scenario)


@pytest.fixture
def all_protocols(xmac, dmac, lmac, scpmac):
    """The four protocol models, keyed by canonical name."""
    return {"xmac": xmac, "dmac": dmac, "lmac": lmac, "scpmac": scpmac}


def midpoint_params(model):
    """Convenience: the midpoint of a model's parameter box as a dict."""
    space = model.parameter_space
    return space.to_dict(space.midpoint())
