"""Shared fixtures for the test suite."""

from __future__ import annotations

from functools import cached_property

import pytest

from repro.core.parameters import Parameter, ParameterSpace
from repro.core.requirements import ApplicationRequirements
from repro.network.packets import PacketModel
from repro.network.radio import cc2420
from repro.network.topology import RingTopology
from repro.protocols.base import DutyCycledMACModel, EnergyBreakdown
from repro.protocols.dmac import DMACModel
from repro.protocols.lmac import LMACModel
from repro.protocols.registry import register_protocol, unregister_protocol
from repro.protocols.scpmac import SCPMACModel
from repro.protocols.xmac import XMACModel
from repro.scenario import Scenario


class AnalyticalOnlyMAC(DutyCycledMACModel):
    """A minimal protocol model with no simulated behaviour.

    All four built-in protocols have simulators, so the tests that exercise
    the "analytical-only protocol" error paths (spec validation, campaign
    assembly, the behaviour factory) register this stand-in instead.
    """

    name = "Analytical-Only"
    family = "test"

    @cached_property
    def parameter_space(self) -> ParameterSpace:
        return ParameterSpace(
            [
                Parameter(
                    name="interval",
                    lower=0.01,
                    upper=1.0,
                    unit="s",
                    description="test duty-cycle interval",
                )
            ]
        )

    def energy_breakdown(self, params, ring):
        interval = self.coerce(params)["interval"]
        return EnergyBreakdown(
            carrier_sense=1e-3 / interval, transmit=0.0, receive=0.0, overhear=0.0
        )

    def hop_latency(self, params, ring):
        return 0.5 * self.coerce(params)["interval"]

    def duty_cycle(self, params, ring):
        return min(1.0, 1e-3 / self.coerce(params)["interval"])

    def capacity_margin(self, params):
        return 1.0


@pytest.fixture
def small_scenario() -> Scenario:
    """A small, fast scenario used by most unit tests."""
    return Scenario(
        topology=RingTopology(depth=4, density=6),
        sampling_rate=1.0 / 600.0,
        radio=cc2420(),
        packets=PacketModel(payload_bytes=32.0),
    )


@pytest.fixture
def paper_scenario() -> Scenario:
    """The scenario used by the figure reproductions (slower, larger)."""
    return Scenario(
        topology=RingTopology(depth=5, density=8),
        sampling_rate=1.0 / 3600.0,
    )


@pytest.fixture
def requirements(small_scenario: Scenario) -> ApplicationRequirements:
    """Loose application requirements that every protocol can meet."""
    return ApplicationRequirements(
        energy_budget=0.06,
        max_delay=6.0,
        sampling_rate=small_scenario.sampling_rate,
    )


@pytest.fixture
def xmac(small_scenario: Scenario) -> XMACModel:
    """X-MAC model bound to the small scenario."""
    return XMACModel(small_scenario)


@pytest.fixture
def dmac(small_scenario: Scenario) -> DMACModel:
    """DMAC model bound to the small scenario."""
    return DMACModel(small_scenario)


@pytest.fixture
def lmac(small_scenario: Scenario) -> LMACModel:
    """LMAC model bound to the small scenario."""
    return LMACModel(small_scenario)


@pytest.fixture
def scpmac(small_scenario: Scenario) -> SCPMACModel:
    """SCP-MAC model bound to the small scenario."""
    return SCPMACModel(small_scenario)


@pytest.fixture
def all_protocols(xmac, dmac, lmac, scpmac):
    """The four protocol models, keyed by canonical name."""
    return {"xmac": xmac, "dmac": dmac, "lmac": lmac, "scpmac": scpmac}


@pytest.fixture
def analytical_only_model_class():
    """The behaviour-less model class (for factory-level error tests)."""
    return AnalyticalOnlyMAC


@pytest.fixture
def analytical_only_protocol():
    """Register the behaviour-less test protocol, yield its name, clean up."""
    register_protocol("analyticalonly", AnalyticalOnlyMAC, overwrite=True)
    yield "analyticalonly"
    unregister_protocol("analyticalonly")


def midpoint_params(model):
    """Convenience: the midpoint of a model's parameter box as a dict."""
    space = model.parameter_space
    return space.to_dict(space.midpoint())
