"""Tests for sweeps, reporting, validation and scalability analysis."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.reporting import format_table, solutions_to_rows, write_csv
from repro.analysis.scalability import scalability_study
from repro.analysis.sweep import SweepResult, sweep_delay_bound, sweep_energy_budget, sweep_grid
from repro.analysis.validation import validate_protocol, validate_protocols
from repro.core.requirements import ApplicationRequirements
from repro.exceptions import ConfigurationError
from repro.protocols import XMACModel
from repro.runtime import ThreadExecutor
from repro.simulation import SimulationConfig

FAST = {"grid_points_per_dimension": 40, "random_starts": 2}


class TestSweeps:
    def test_delay_sweep_produces_one_solution_per_feasible_value(self, xmac):
        result = sweep_delay_bound(xmac, energy_budget=0.06, delay_bounds=[1.0, 3.0], **FAST)
        assert result.swept_parameter == "max_delay"
        assert len(result.solutions) == 2
        assert not result.infeasible_values

    def test_delay_sweep_flags_infeasible_values(self, xmac):
        result = sweep_delay_bound(
            xmac, energy_budget=0.06, delay_bounds=[0.001, 3.0], **FAST
        )
        assert result.infeasible_values == [0.001]
        assert len(result.solutions) == 1
        assert result.feasible_values == [3.0]

    def test_energy_sweep_produces_series_rows(self, xmac):
        result = sweep_energy_budget(xmac, max_delay=6.0, energy_budgets=[0.01, 0.05], **FAST)
        rows = result.series()
        assert len(rows) == 2
        assert rows[0]["protocol"] == "X-MAC"
        assert "E_star" in rows[0]

    def test_relaxing_delay_bound_never_increases_best_energy(self, xmac):
        result = sweep_delay_bound(xmac, energy_budget=0.06, delay_bounds=[0.8, 2.0, 5.0], **FAST)
        best = [s.energy_best for s in result.solutions]
        assert best[0] >= best[1] >= best[2]

    def test_duplicate_swept_value_kept_per_index(self, xmac):
        # A value swept twice must appear twice in the feasible list (and in
        # the series), not be collapsed or dropped by a membership test.
        result = sweep_delay_bound(
            xmac, energy_budget=0.06, delay_bounds=[3.0, 0.001, 3.0], **FAST
        )
        assert result.feasibility == [True, False, True]
        assert result.feasible_values == [3.0, 3.0]
        assert len(result.series()) == 2

    def test_legacy_feasible_values_drop_infeasible_once(self):
        # Direct construction without per-index flags (legacy shape): an
        # infeasible value listed once must only drop one occurrence.
        result = SweepResult(
            protocol="X-MAC",
            swept_parameter="max_delay",
            values=[2.0, 2.0, 3.0],
            infeasible_values=[2.0],
        )
        assert result.feasible_values == [2.0, 3.0]


class TestSweepGrid:
    def test_grid_matches_individual_sweeps(self, xmac, dmac):
        models = {"xmac": xmac, "dmac": dmac}
        base = {
            name: ApplicationRequirements(
                energy_budget=0.06,
                max_delay=6.0,
                sampling_rate=model.scenario.sampling_rate,
            )
            for name, model in models.items()
        }
        grid = sweep_grid(models, "max_delay", [2.0, 5.0], base, **FAST)
        assert set(grid) == {"xmac", "dmac"}
        for name, model in models.items():
            single = sweep_delay_bound(
                model, energy_budget=0.06, delay_bounds=[2.0, 5.0], **FAST
            )
            assert grid[name].series() == single.series()

    def test_grid_rejects_unknown_parameter(self, xmac):
        with pytest.raises(ConfigurationError):
            sweep_grid({"xmac": xmac}, "jitter", [1.0], {"xmac": None})

    def test_grid_rejects_missing_requirements(self, xmac):
        with pytest.raises(ConfigurationError):
            sweep_grid({"xmac": xmac}, "max_delay", [1.0], {})


class TestReporting:
    def test_format_table_alignment_and_content(self):
        rows = [{"a": 1.0, "b": "x"}, {"a": 2.5, "b": "yy"}]
        table = format_table(rows)
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_table_blank_fills_heterogeneous_rows(self):
        table = format_table([{"a": 1}, {"b": 2}, {"a": 3, "c": 4}])
        lines = table.splitlines()
        # Columns are the union of keys, in first-appearance order.
        assert lines[0].split() == ["a", "b", "c"]
        assert lines[2].split() == ["1"]  # missing cells are blank
        assert lines[3].split() == ["2"]
        assert lines[4].split() == ["3", "4"]

    def test_write_csv_blank_fills_heterogeneous_rows(self, tmp_path: Path):
        path = write_csv([{"a": 1}, {"b": 2}], tmp_path / "mixed.csv")
        content = path.read_text().strip().splitlines()
        assert content[0] == "a,b"
        assert content[1] == "1,"
        assert content[2] == ",2"

    def test_solutions_to_rows_blank_fills_missing_solutions(self):
        rows = solutions_to_rows([None], "Lmax[s]", [2.0])
        assert rows[0]["Lmax[s]"] == 2.0
        assert rows[0]["E_star[J/s]"] == ""

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_write_csv_round_trip(self, tmp_path: Path):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        path = write_csv(rows, tmp_path / "out" / "table.csv")
        content = path.read_text().strip().splitlines()
        assert content[0] == "a,b"
        assert content[1] == "1,2"

    def test_write_csv_rejects_empty(self, tmp_path: Path):
        with pytest.raises(ConfigurationError):
            write_csv([], tmp_path / "empty.csv")

    def test_solutions_to_rows(self, xmac):
        result = sweep_delay_bound(xmac, energy_budget=0.06, delay_bounds=[2.0], **FAST)
        rows = solutions_to_rows(result.solutions, "Lmax[s]", [2.0])
        assert rows[0]["Lmax[s]"] == 2.0
        assert rows[0]["L_star[ms]"] > 0


class TestValidation:
    def test_validation_report_fields_and_errors(self, small_scenario):
        model = XMACModel(small_scenario)
        report = validate_protocol(
            model,
            {"wakeup_interval": 0.4},
            SimulationConfig(horizon=1500.0, seed=3),
        )
        assert report.protocol == "X-MAC"
        assert report.delivery_ratio > 0.95
        assert report.energy_error < 0.35
        assert report.delay_error < 0.5
        as_dict = report.as_dict()
        assert "energy_error" in as_dict and "delay_error" in as_dict

    def test_within_helper(self, small_scenario):
        model = XMACModel(small_scenario)
        report = validate_protocol(
            model, {"wakeup_interval": 0.4}, SimulationConfig(horizon=1000.0, seed=3)
        )
        assert report.within(energy_tolerance=1.0, delay_tolerance=1.0)
        assert not report.within(energy_tolerance=1e-9, delay_tolerance=1e-9)

    def test_batched_validation_matches_individual(self, small_scenario):
        model = XMACModel(small_scenario)
        config = SimulationConfig(horizon=800.0, seed=3)
        jobs = [(model, {"wakeup_interval": 0.4}), (model, {"wakeup_interval": 0.6})]
        serial = validate_protocols(jobs, config)
        threaded = validate_protocols(jobs, config, executor=ThreadExecutor(workers=2))
        assert [r.as_dict() for r in serial] == [r.as_dict() for r in threaded]
        assert [r.parameters["wakeup_interval"] for r in serial] == [0.4, 0.6]


class TestScalability:
    def test_solve_time_does_not_blow_up_with_node_count(self):
        requirements = ApplicationRequirements(energy_budget=0.06, max_delay=6.0)
        records = scalability_study(
            XMACModel,
            sizes=[(3, 4), (6, 8), (9, 10)],
            requirements=requirements,
            grid_points_per_dimension=30,
            random_starts=1,
        )
        assert len(records) == 3
        nodes = [record.node_count for record in records]
        assert nodes == sorted(nodes)
        assert nodes[-1] > 15 * nodes[0]
        times = [record.solve_seconds for record in records]
        # The game is solved over MAC parameters, not nodes: a 16x larger
        # network must not cost anywhere near 16x the solve time.
        assert times[-1] < 6.0 * max(times[0], 0.05)

    def test_records_contain_solution_values(self):
        requirements = ApplicationRequirements(energy_budget=0.06, max_delay=6.0)
        records = scalability_study(
            XMACModel,
            sizes=[(3, 4)],
            requirements=requirements,
            grid_points_per_dimension=30,
            random_starts=1,
        )
        assert records[0].energy_star > 0
        assert records[0].delay_star > 0
