"""Monte-Carlo campaign machinery: seeds, aggregation gates, determinism."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.protocols.registry import create_protocol
from repro.runtime import build_runner
from repro.scenarios import scenario_preset
from repro.scenarios.presets import (
    ScenarioPreset,
    register_scenario_preset,
    unregister_scenario_preset,
)
from repro.simulation.runner import SimulationConfig
from repro.validation import (
    CampaignSpec,
    MetricCheck,
    ReplicationMeasurement,
    aggregate_measurements,
    campaign_to_json,
    replication_seed,
    run_campaign,
)
from repro.validation.campaign import _simulate_payload

#: Small-but-real campaign used by the integration tests below.
FAST_SPEC = dict(
    scenarios=("paper-default",),
    protocols=("xmac",),
    replications=2,
    horizon=300.0,
    grid_points_per_dimension=15,
)


class TestReplicationSeeds:
    def test_deterministic(self):
        assert replication_seed(1, "paper-default", "xmac", 0) == replication_seed(
            1, "paper-default", "xmac", 0
        )

    def test_distinct_across_identity_components(self):
        seeds = {
            replication_seed(1, "paper-default", "xmac", 0),
            replication_seed(1, "paper-default", "xmac", 1),
            replication_seed(1, "paper-default", "lmac", 0),
            replication_seed(1, "high-rate", "xmac", 0),
            replication_seed(2, "paper-default", "xmac", 0),
        }
        assert len(seeds) == 5

    def test_fits_numpy_seed_range(self):
        seed = replication_seed(123, "bursty", "dmac", 7)
        assert 0 <= seed < 2**32


class TestCampaignSpec:
    def test_defaults_cover_all_four_simulable_protocols(self):
        spec = CampaignSpec()
        assert spec.scenarios  # every registered preset
        assert {"xmac", "dmac", "lmac", "scpmac"} <= set(spec.protocols)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(scenarios=("no-such-preset",))

    def test_analytical_only_protocol_rejected_up_front(self, analytical_only_protocol):
        # A behaviour-less protocol cannot be validated by simulation;
        # discovering that after the solve stage would abort the campaign,
        # so the spec refuses early.
        with pytest.raises(ConfigurationError, match="no simulated behaviour"):
            CampaignSpec(protocols=(analytical_only_protocol, "xmac"))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replications": 0},
            {"horizon": 0.0},
            {"confidence": 1.0},
            {"energy_tolerance": 0.0},
            {"min_delivery_ratio": 1.5},
            {"scenarios": ("paper-default", "paper-default")},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CampaignSpec(**kwargs)


def _measurement(seed=1, energy=0.002, delay=0.25, delivery=1.0, generated=10, delivered=10):
    return ReplicationMeasurement(
        seed=seed,
        energy=energy,
        delay=delay,
        delivery_ratio=delivery,
        generated=generated,
        delivered=delivered,
        dropped=generated - delivered,
    )


class TestAggregation:
    def _spec(self, **overrides):
        return CampaignSpec(scenarios=("paper-default",), protocols=("xmac",), **overrides)

    def test_zero_delivered_packets_is_data_not_a_crash(self):
        # Every replication delivered nothing: the delay aggregate is empty,
        # the delay check is skipped and the delivery check fails — as data.
        measurements = [
            _measurement(seed=s, delay=None, delivery=0.0, generated=0, delivered=0)
            for s in (1, 2, 3)
        ]
        metrics, checks = aggregate_measurements(self._spec(), 0.002, 0.25, measurements)
        assert metrics["delay"].count == 0
        assert metrics["delay"].mean is None
        assert metrics["energy"].count == 3
        by_metric = {check.metric: check for check in checks}
        assert by_metric["delay"].status == "skipped"
        assert "no delivered packets" in by_metric["delay"].detail
        assert by_metric["delivery_ratio"].status == "fail"

    def test_partial_delivery_keeps_delay_samples_that_exist(self):
        measurements = [
            _measurement(seed=1, delay=0.3),
            _measurement(seed=2, delay=None, delivery=0.0, generated=5, delivered=0),
            _measurement(seed=3, delay=0.5),
        ]
        metrics, _ = aggregate_measurements(self._spec(), 0.002, 0.4, measurements)
        assert metrics["delay"].count == 2
        assert metrics["delay"].mean == pytest.approx(0.4)
        assert metrics["delivery_ratio"].count == 3

    def test_single_replication_degenerate_interval(self):
        metrics, checks = aggregate_measurements(
            self._spec(replications=1), 0.002, 0.25, [_measurement()]
        )
        for name in ("energy", "delay", "delivery_ratio"):
            assert metrics[name].count == 1
            assert metrics[name].ci_lower is None
            assert metrics[name].ci_upper is None
        # The tolerance gates still run on the (single-sample) mean.
        assert {check.status for check in checks} == {"pass"}

    def test_out_of_tolerance_fails_with_detail(self):
        _, checks = aggregate_measurements(
            self._spec(), 0.002 * 10.0, 0.25, [_measurement(seed=s) for s in (1, 2)]
        )
        energy = next(check for check in checks if check.metric == "energy")
        assert energy.status == "fail"
        assert energy.error == pytest.approx(9.0)
        assert "exceeds tolerance" in energy.detail

    def test_empty_measurements_rejected(self):
        with pytest.raises(ValidationError):
            aggregate_measurements(self._spec(), 0.002, 0.25, [])

    def test_bad_check_status_rejected(self):
        with pytest.raises(ValidationError):
            MetricCheck(metric="energy", status="maybe")


class TestSimulatePayload:
    def test_zero_delivery_replication_yields_none_delay(self):
        # Seed 2 on a 40-second horizon generates no packet at all for the
        # paper's hourly sampling (pinned; the offsets all fall past the
        # generation cutoff).
        preset = scenario_preset("paper-default")
        model = create_protocol("xmac", preset.scenario)
        space = model.parameter_space
        params = space.to_dict(space.midpoint())
        measurement = _simulate_payload(
            (model, params, SimulationConfig(horizon=40.0, seed=2))
        )
        assert measurement.generated == 0
        assert measurement.delivered == 0
        assert measurement.delay is None
        assert measurement.delivery_ratio == 0.0
        assert measurement.energy > 0.0  # idle listening still costs power


class TestRunCampaign:
    def test_small_campaign_end_to_end(self):
        spec = CampaignSpec(**FAST_SPEC)
        result = run_campaign(spec, build_runner(workers=1, use_cache=False))
        assert len(result.cells) == 1
        cell = result.cells[0]
        assert cell.feasible
        assert cell.seeds == tuple(
            replication_seed(spec.base_seed, "paper-default", "xmac", r)
            for r in range(spec.replications)
        )
        assert set(cell.metrics) == {"energy", "delay", "delivery_ratio"}
        assert len(cell.checks) == 3
        assert result.cell("paper-default", "xmac") is cell
        rows = result.rows()
        assert rows[0]["scenario"] == "paper-default"
        assert rows[0]["status"] in ("pass", "fail")

    def test_infeasible_cell_recorded_as_data(self):
        preset = scenario_preset("paper-default")
        register_scenario_preset(
            ScenarioPreset(
                name="campaign-infeasible-test",
                title="Intentionally infeasible delay bound",
                description="Test-only preset whose game has no feasible point.",
                scenario=preset.scenario,
                energy_budget=preset.energy_budget,
                max_delay=1e-5,
            )
        )
        try:
            spec = CampaignSpec(
                scenarios=("campaign-infeasible-test",),
                protocols=("xmac",),
                replications=1,
                grid_points_per_dimension=15,
            )
            result = run_campaign(spec, build_runner(workers=1, use_cache=False))
        finally:
            unregister_scenario_preset("campaign-infeasible-test")
        cell = result.cells[0]
        assert not cell.feasible
        assert cell.solve_error
        assert cell.metrics == {}
        assert not result.feasible_cells
        # Infeasible cells carry no checks, so the campaign "passes".
        assert result.passed
        assert result.rows()[0]["status"] == "infeasible"

    def test_serial_and_pool_artifacts_byte_identical(self):
        spec = CampaignSpec(
            scenarios=("paper-default",),
            protocols=("xmac", "lmac"),
            replications=3,
            horizon=300.0,
            grid_points_per_dimension=15,
        )
        serial = run_campaign(spec, build_runner(workers=1, use_cache=False))
        pooled = run_campaign(spec, build_runner(workers=3, use_cache=False))
        assert campaign_to_json(serial) == campaign_to_json(pooled)

    def test_artifact_excludes_runner_identity(self):
        spec = CampaignSpec(**FAST_SPEC)
        result = run_campaign(spec, build_runner(workers=1, use_cache=False))
        payload = campaign_to_json(result)
        assert "workers" not in payload
        assert "seconds" not in payload
