"""Streaming moments and Student-t intervals of the campaign layer."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.validation import MetricAggregate, StreamingMoments, student_t_critical


class TestStreamingMoments:
    def test_matches_numpy_mean_and_sample_variance(self):
        samples = [0.3, 1.7, 2.9, -0.4, 5.5, 3.1, 0.0, 2.2]
        moments = StreamingMoments()
        for sample in samples:
            moments.add(sample)
        assert moments.count == len(samples)
        assert moments.mean == pytest.approx(np.mean(samples), rel=1e-12)
        assert moments.variance == pytest.approx(np.var(samples, ddof=1), rel=1e-12)
        assert moments.std == pytest.approx(np.std(samples, ddof=1), rel=1e-12)

    def test_empty_accumulator_reports_none(self):
        moments = StreamingMoments()
        assert moments.count == 0
        assert moments.mean is None
        assert moments.variance is None
        assert moments.std is None

    def test_single_sample_has_mean_but_no_variance(self):
        moments = StreamingMoments()
        moments.add(4.2)
        assert moments.count == 1
        assert moments.mean == 4.2
        assert moments.variance is None
        assert moments.std is None

    def test_constant_samples_have_zero_variance(self):
        moments = StreamingMoments()
        for _ in range(5):
            moments.add(2.5)
        assert moments.mean == 2.5
        assert moments.variance == 0.0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_samples_rejected(self, bad):
        with pytest.raises(ValidationError):
            StreamingMoments().add(bad)


class TestStudentT:
    def test_known_critical_values(self):
        # Classic table values: t_{0.975, 4} and t_{0.975, 10}.
        assert student_t_critical(0.95, 4) == pytest.approx(2.776, abs=1e-3)
        assert student_t_critical(0.95, 10) == pytest.approx(2.228, abs=1e-3)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            student_t_critical(1.0, 4)
        with pytest.raises(ValidationError):
            student_t_critical(0.0, 4)
        with pytest.raises(ValidationError):
            student_t_critical(0.95, 0)


class TestMetricAggregate:
    def _moments(self, samples):
        moments = StreamingMoments()
        for sample in samples:
            moments.add(sample)
        return moments

    def test_interval_matches_textbook_formula(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        aggregate = MetricAggregate.from_moments(
            "energy", self._moments(samples), confidence=0.95
        )
        half = student_t_critical(0.95, 4) * np.std(samples, ddof=1) / math.sqrt(5)
        assert aggregate.mean == pytest.approx(3.0)
        assert aggregate.ci_lower == pytest.approx(3.0 - half, rel=1e-12)
        assert aggregate.ci_upper == pytest.approx(3.0 + half, rel=1e-12)

    def test_single_replication_interval_is_degenerate(self):
        # One sample: the sample variance — hence the CI — is undefined, and
        # the aggregate says so with None bounds instead of raising.
        aggregate = MetricAggregate.from_moments(
            "delay", self._moments([0.7]), confidence=0.95
        )
        assert aggregate.count == 1
        assert aggregate.mean == 0.7
        assert aggregate.variance is None
        assert aggregate.ci_lower is None
        assert aggregate.ci_upper is None

    def test_no_samples_aggregate_is_all_none(self):
        aggregate = MetricAggregate.from_moments(
            "delay", StreamingMoments(), confidence=0.95
        )
        assert aggregate.count == 0
        assert aggregate.mean is None
        assert aggregate.ci_lower is None

    def test_as_dict_round_trips_none(self):
        aggregate = MetricAggregate.from_moments(
            "delay", self._moments([0.7]), confidence=0.95
        )
        payload = aggregate.as_dict()
        assert payload["mean"] == 0.7
        assert payload["ci_lower"] is None
        assert payload["ci_upper"] is None
