"""Artifact persistence and report generation from campaign results."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ValidationError
from repro.runtime import build_runner
from repro.validation import (
    CAMPAIGN_SCHEMA,
    CAMPAIGN_SCHEMA_VERSION,
    CampaignSpec,
    campaign_rows,
    campaign_to_json,
    load_campaign_dict,
    run_campaign,
    write_campaign,
)
from repro.validation.report import GENERATED_MARKER, main, render_validation_markdown

FAST_SPEC = CampaignSpec(
    scenarios=("paper-default",),
    protocols=("xmac",),
    replications=2,
    horizon=300.0,
    grid_points_per_dimension=15,
)


@pytest.fixture(scope="module")
def result():
    return run_campaign(FAST_SPEC, build_runner(workers=1, use_cache=False))


class TestArtifacts:
    def test_round_trip_preserves_payload(self, result, tmp_path):
        path = write_campaign(result, tmp_path / "campaign.json")
        payload = load_campaign_dict(path)
        assert payload == result.as_dict()
        assert payload["schema"] == CAMPAIGN_SCHEMA
        assert payload["schema_version"] == CAMPAIGN_SCHEMA_VERSION

    def test_serialization_is_deterministic(self, result):
        assert campaign_to_json(result) == campaign_to_json(result)
        assert campaign_to_json(result).endswith("\n")

    def test_missing_artifact_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            load_campaign_dict(tmp_path / "absent.json")

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something.else"}), encoding="utf-8")
        with pytest.raises(ValidationError):
            load_campaign_dict(path)

    def test_wrong_version_rejected(self, result, tmp_path):
        payload = result.as_dict()
        payload["schema_version"] = CAMPAIGN_SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ValidationError):
            load_campaign_dict(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValidationError):
            load_campaign_dict(path)

    def test_rows_share_columns(self, result):
        rows = campaign_rows(result.as_dict())
        assert len(rows) == len(result.cells)
        columns = list(rows[0].keys())
        assert all(list(row.keys()) == columns for row in rows)

    def test_result_rows_equal_artifact_rows(self, result):
        # One row schema: a CSV written at campaign time matches a CSV
        # derived later from the loaded artifact.
        assert result.rows() == campaign_rows(result.as_dict())


class TestReport:
    def test_rendering_is_pure_and_marked(self, result):
        payload = result.as_dict()
        page = render_validation_markdown(payload)
        assert page == render_validation_markdown(payload)
        assert GENERATED_MARKER in page
        assert "`paper-default`" in page
        assert "Student-t" in page

    def test_main_writes_and_checks(self, result, tmp_path):
        artifact = write_campaign(result, tmp_path / "campaign.json")
        output = tmp_path / "validation.md"
        assert main(["--artifact", str(artifact), "--output", str(output)]) == 0
        assert GENERATED_MARKER in output.read_text(encoding="utf-8")
        assert main(["--artifact", str(artifact), "--output", str(output), "--check"]) == 0

    def test_main_check_detects_staleness(self, result, tmp_path):
        artifact = write_campaign(result, tmp_path / "campaign.json")
        output = tmp_path / "validation.md"
        output.write_text("# stale\n", encoding="utf-8")
        assert main(["--artifact", str(artifact), "--output", str(output), "--check"]) == 1

    def test_committed_artifact_regenerates_committed_page(self):
        # The acceptance gate CI enforces: docs/validation.md is exactly the
        # rendering of docs/validation_campaign.json.
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        payload = load_campaign_dict(root / "docs" / "validation_campaign.json")
        on_disk = (root / "docs" / "validation.md").read_text(encoding="utf-8")
        assert on_disk == render_validation_markdown(payload)
