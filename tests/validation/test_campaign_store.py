"""Campaign × result store: warm replay, resume after a kill, shard merge."""

from __future__ import annotations

import pytest

from repro.runtime import build_runner
from repro.store import ResultStore, merge_stores
from repro.validation import CampaignSpec, campaign_to_json, run_campaign
from repro.validation.campaign import _simulate_payload

FAST_SPEC = dict(
    scenarios=("paper-default",),
    protocols=("xmac",),
    replications=3,
    horizon=300.0,
    grid_points_per_dimension=15,
)


def campaign_bytes(result):
    return campaign_to_json(result)


class DiesMidCampaign(Exception):
    """Stand-in for a SIGKILL'd worker/process."""


class _KillingExecutor:
    """Serial executor that dies after simulating ``survive`` payloads.

    Mimics an interrupted campaign: everything simulated before the "kill"
    has already been written behind to the store, the rest never ran.
    """

    workers = 1

    def __init__(self, survive: int) -> None:
        self.survive = survive

    def describe(self) -> str:
        return "killing[1]"

    def map_ordered(self, fn, items, on_result=None):
        results = []
        for index, item in enumerate(items):
            if index >= self.survive:
                raise DiesMidCampaign(f"killed after {self.survive} simulations")
            result = fn(item)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


class _CountingExecutor:
    """Serial executor that counts how many payloads it actually ran."""

    workers = 1

    def __init__(self) -> None:
        self.calls = 0

    def describe(self) -> str:
        return "counting[1]"

    def map_ordered(self, fn, items, on_result=None):
        items = list(items)
        self.calls += len(items)
        results = []
        for index, item in enumerate(items):
            result = fn(item)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


class TestWarmReplay:
    def test_second_run_simulates_nothing(self, tmp_path):
        spec = CampaignSpec(**FAST_SPEC)
        store = ResultStore(tmp_path / "store")
        cold = run_campaign(spec, runner=build_runner(workers=1, store=store))
        assert store.stats().puts > 0

        counting = _CountingExecutor()
        warm_store = ResultStore(tmp_path / "store")
        warm_runner = build_runner(workers=1, store=warm_store)
        warm_runner._executor = counting  # inject: count replication dispatches
        warm = run_campaign(spec, runner=warm_runner)
        assert counting.calls == 0  # every replication answered from disk
        assert warm_store.stats().puts == 0
        assert campaign_bytes(warm) == campaign_bytes(cold)

    def test_store_replay_matches_uncached_run(self, tmp_path):
        spec = CampaignSpec(**FAST_SPEC)
        baseline = run_campaign(spec, runner=build_runner(workers=1))
        store = ResultStore(tmp_path / "store")
        stored = run_campaign(spec, runner=build_runner(workers=1, store=store))
        replayed = run_campaign(
            spec, runner=build_runner(workers=1, store=ResultStore(tmp_path / "store"))
        )
        assert campaign_bytes(stored) == campaign_bytes(baseline)
        assert campaign_bytes(replayed) == campaign_bytes(baseline)


class TestResumeAfterKill:
    def test_killed_campaign_resumes_byte_identically(self, tmp_path):
        spec = CampaignSpec(**FAST_SPEC)
        cold = run_campaign(spec, runner=build_runner(workers=1))
        cold_bytes = campaign_bytes(cold)

        # First attempt dies after one replication; that replication must
        # already be on disk (write-behind happens per payload batch, and
        # the partial batch raised before returning).
        store = ResultStore(tmp_path / "store")
        runner = build_runner(workers=1, store=store)
        runner._executor = _KillingExecutor(survive=1)
        with pytest.raises(DiesMidCampaign):
            run_campaign(spec, runner=runner)

        # Resume with a fresh process-equivalent state over the same store:
        # only the never-simulated replications run, and the artifact is
        # byte-identical to the uninterrupted cold run.
        resumed_store = ResultStore(tmp_path / "store")
        counting = _CountingExecutor()
        resumed_runner = build_runner(workers=1, store=resumed_store)
        resumed_runner._executor = counting
        resumed = run_campaign(spec, runner=resumed_runner)
        total = FAST_SPEC["replications"]
        # Exactly the work the kill destroyed is redone: the one completed
        # replication (and the stage-1 solve) come from the store.
        assert counting.calls == total - 1
        assert resumed_store.stats().hits >= 2  # solve + surviving replication
        assert campaign_bytes(resumed) == cold_bytes


class TestShardedCampaign:
    def test_shards_merge_to_cold_identical_artifact(self, tmp_path):
        # Shard by protocol (the round-robin ``--shard I/N`` shape), merge
        # the two stores, then replay the full campaign warm.
        full = CampaignSpec(**dict(FAST_SPEC, protocols=("xmac", "lmac")))
        cold = run_campaign(full, runner=build_runner(workers=1))

        for index, protocol in enumerate(("xmac", "lmac")):
            shard_spec = CampaignSpec(**dict(FAST_SPEC, protocols=(protocol,)))
            shard_store = ResultStore(tmp_path / f"shard{index}")
            run_campaign(shard_spec, runner=build_runner(workers=1, store=shard_store))

        merge_stores([tmp_path / "shard0", tmp_path / "shard1"], tmp_path / "merged")
        counting = _CountingExecutor()
        warm_runner = build_runner(
            workers=1, store=ResultStore(tmp_path / "merged")
        )
        warm_runner._executor = counting
        warm = run_campaign(full, runner=warm_runner)
        assert counting.calls == 0
        assert campaign_bytes(warm) == campaign_bytes(cold)
