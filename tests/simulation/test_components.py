"""Tests for channel, node and packet bookkeeping."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.network.deployment import chain_deployment
from repro.network.radio import cc2420
from repro.simulation.channel import Channel
from repro.simulation.energy import EnergyAccount
from repro.simulation.node import SensorNode
from repro.simulation.packets import DataPacket, DeliveryRecord, PacketLog


def make_node(node_id=2, ring=2, parent=1, capacity=4) -> SensorNode:
    return SensorNode(
        node_id=node_id,
        ring=ring,
        parent=parent,
        energy=EnergyAccount(radio=cc2420()),
        queue_capacity=capacity,
    )


class TestChannel:
    def test_reservation_blocks_neighbourhood(self):
        deployment = chain_deployment(depth=3)
        channel = Channel(deployment)
        channel.reserve(sender=2, start=0.0, duration=1.0)
        # Nodes 1, 2, 3 are within range of node 2, node 0 (sink) is not.
        assert channel.is_busy(2, 0.5)
        assert channel.is_busy(1, 0.5)
        assert channel.is_busy(3, 0.5)
        assert not channel.is_busy(0, 0.5)

    def test_free_at_returns_end_of_reservation(self):
        deployment = chain_deployment(depth=2)
        channel = Channel(deployment)
        channel.reserve(sender=1, start=0.0, duration=2.0)
        assert channel.free_at(2, 1.0) == pytest.approx(2.0)
        assert channel.deferrals == 1

    def test_free_at_when_idle_returns_now(self):
        channel = Channel(chain_deployment(depth=2))
        assert channel.free_at(1, 3.0) == 3.0

    def test_unknown_node_rejected(self):
        channel = Channel(chain_deployment(depth=2))
        with pytest.raises(SimulationError):
            channel.is_busy(99, 0.0)

    def test_negative_duration_rejected(self):
        channel = Channel(chain_deployment(depth=2))
        with pytest.raises(SimulationError):
            channel.reserve(1, 0.0, -1.0)


class TestSensorNode:
    def test_enqueue_and_head_and_pop(self):
        node = make_node()
        packet = DataPacket(packet_id=1, source=2, created_at=0.0)
        assert node.enqueue(packet)
        assert node.head() is packet
        assert node.backlog == 1
        assert node.pop_head() is packet
        assert node.backlog == 0
        assert node.forwarded == 1

    def test_full_queue_drops_packets(self):
        node = make_node(capacity=2)
        assert node.enqueue(DataPacket(1, 2, 0.0))
        assert node.enqueue(DataPacket(2, 2, 0.0))
        assert not node.enqueue(DataPacket(3, 2, 0.0))
        assert node.dropped == 1

    def test_pop_empty_queue_rejected(self):
        with pytest.raises(SimulationError):
            make_node().pop_head()

    def test_sink_does_not_queue(self):
        sink = SensorNode(node_id=0, ring=0, parent=None, energy=EnergyAccount(radio=cc2420()))
        assert sink.is_sink
        with pytest.raises(SimulationError):
            sink.enqueue(DataPacket(1, 2, 0.0))


class TestPacketLog:
    def test_delivery_ratio_and_delays(self):
        log = PacketLog()
        for _ in range(4):
            log.record_generated()
        log.record_delivery(
            DeliveryRecord(packet_id=1, source=5, source_ring=2, created_at=1.0, delivered_at=3.0, hops=2)
        )
        log.record_delivery(
            DeliveryRecord(packet_id=2, source=7, source_ring=3, created_at=2.0, delivered_at=5.0, hops=3)
        )
        assert log.delivery_ratio == pytest.approx(0.5)
        assert log.delays() == [2.0, 3.0]
        assert log.delays(source_ring=3) == [3.0]

    def test_delivery_before_creation_rejected(self):
        with pytest.raises(SimulationError):
            DeliveryRecord(packet_id=1, source=5, source_ring=2, created_at=3.0, delivered_at=1.0, hops=2)

    def test_packet_hop_recording(self):
        packet = DataPacket(packet_id=1, source=9, created_at=0.0)
        packet.record_hop(4)
        packet.record_hop(2)
        assert packet.hops == 2
        assert packet.current_holder == 2
