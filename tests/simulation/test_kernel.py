"""Duty-cycle kernel: state-machine edge cases and trace guarantees.

The kernel refactor promises two things beyond unit behaviour: (1) the
three pre-kernel simulators produce *bit-identical* traces at the same seed
(pinned against golden values captured before the refactor), and (2) every
kernel transition — empty wakeup, contention collision, slot-overflow
retry — is exercised somewhere deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.network.deployment import chain_deployment, ring_deployment
from repro.network.radio import cc2420
from repro.network.topology import RingTopology
from repro.protocols import DMACModel, LMACModel, SCPMACModel, XMACModel
from repro.scenario import Scenario
from repro.simulation import EnergyAccount, SimulationConfig, simulate_protocol
from repro.simulation.mac import (
    DMACSimBehaviour,
    KernelState,
    MediumGrant,
    PeriodicCharge,
)
from repro.simulation.node import SensorNode


@pytest.fixture
def scenario() -> Scenario:
    return Scenario(topology=RingTopology(depth=3, density=4), sampling_rate=1.0 / 120.0)


def protocol_cases(scenario):
    """The four (name, model, params) simulation cases of the kernel tests."""
    return [
        ("xmac", XMACModel(scenario), {"wakeup_interval": 0.3}),
        ("dmac", DMACModel(scenario), {"frame_length": 1.0}),
        ("lmac", LMACModel(scenario), {"slot_length": 0.02, "slot_count": 9.0}),
        ("scpmac", SCPMACModel(scenario), {"poll_interval": 0.3}),
    ]


def make_node(node_id, ring, parent, phase=0.0):
    node = SensorNode(
        node_id=node_id, ring=ring, parent=parent, energy=EnergyAccount(radio=cc2420())
    )
    node.phase = phase
    return node


# Captured from the pre-kernel simulators (commit 164c580) at
# horizon=600, seed=11 on the fixture scenario: the kernel refactor must
# reproduce these traces bit for bit (``float.hex`` round-trips exactly).
GOLDEN_TRACES = {
    "xmac": {
        "system_energy": "0x1.c14dcc779990cp-10",
        "bottleneck_ring_energy": "0x1.5586e5b44ef19p-10",
        "max_ring_delay": "0x1.1b0eef0a04df5p-1",
        "counters": (168, 168, 410, 5),
        "node_power": {
            1: "0x1.7a1328119099fp-10",
            2: "0x1.4ab31429c64a0p-10",
            3: "0x1.a00f1c3c96a2ep-11",
            36: "0x1.87bbd50187c9dp-11",
        },
    },
    "dmac": {
        "system_energy": "0x1.1b85e745fce59p-10",
        "bottleneck_ring_energy": "0x1.1b1a93a7cc12ep-10",
        "max_ring_delay": "0x1.5e6400a1a54bcp-1",
        "counters": (163, 163, 397, 5),
        "node_power": {
            1: "0x1.1b03b80c20c81p-10",
            2: "0x1.1b2501291894fp-10",
            3: "0x1.1abbae23fa08fp-10",
            36: "0x1.1563f98786aacp-10",
        },
    },
    "lmac": {
        "system_energy": "0x1.103873942dfa0p-7",
        "bottleneck_ring_energy": "0x1.103703c899d23p-7",
        "max_ring_delay": "0x1.27bb5c8ceb600p-2",
        "counters": (166, 166, 408, 0),
        "node_power": {
            1: "0x1.103873942dfa0p-7",
            2: "0x1.10362ba0d1c89p-7",
            3: "0x1.1037444c95bddp-7",
            36: "0x1.0fe1c5747e9f4p-7",
        },
    },
    "scpmac": {
        "system_energy": "0x1.789c6ab7a73dbp-11",
        "bottleneck_ring_energy": "0x1.75d6c8518aa14p-11",
        "max_ring_delay": "0x1.7ca4f1f7bbfdbp-1",
        "counters": (162, 162, 395, 0),
        "node_power": {
            1: "0x1.738576ddd7460p-11",
            2: "0x1.75e88c8064735p-11",
            3: "0x1.7550b330478dfp-11",
            36: "0x1.561819d6bc9d6p-11",
        },
    },
}

#: Both engines must reproduce the goldens: the batched engine dispatches
#: all four protocols to array kernels — the trace is the same trace.
ENGINES = ("scalar", "batched")


# Pinned edge-path traces (captured from the scalar engine at the settings
# below): a contended SCP-MAC run whose lost epochs retry at the next poll
# (193 deferrals), a contended X-MAC run whose collisions resolve by
# backoff-deferral (108 deferrals), and a contended DMAC run whose
# exchanges overflow the transmit slot and retry next frame (191
# deferrals), each at sampling_rate=1/20, horizon=300, seed=7 on the
# depth-3/density-4 ring.
GOLDEN_EDGE_TRACES = {
    "dmac-slot-overflow": {
        "protocol": "dmac",
        "params": {"frame_length": 1.0},
        "system_energy": "0x1.3ddc38a384a2dp-10",
        "bottleneck_ring_energy": "0x1.3d4bf300ac1dap-10",
        "max_ring_delay": "0x1.17e77836f1104p+0",
        "counters": (486, 486, 1189, 191),
        "node_power": {
            1: "0x1.3c5eba840d786p-10",
            2: "0x1.3d3fade43b0ecp-10",
            3: "0x1.3db52af6e34c9p-10",
            36: "0x1.1a8e20b1c938ap-10",
        },
    },
    "scpmac-lost-epoch": {
        "protocol": "scpmac",
        "params": {"poll_interval": 0.5},
        "system_energy": "0x1.bbdfc666290d2p-11",
        "bottleneck_ring_energy": "0x1.ba77ca53ef8f8p-11",
        "max_ring_delay": "0x1.8d4c9ed81bf42p+0",
        "counters": (487, 487, 1191, 193),
        "node_power": {
            1: "0x1.b8d7eeae58c09p-11",
            2: "0x1.b999f80b2877bp-11",
            3: "0x1.bb8d7c3013f89p-11",
            36: "0x1.f5ea7958ba18ap-12",
        },
    },
    "xmac-contention-defer": {
        "protocol": "xmac",
        "params": {"wakeup_interval": 0.3},
        "system_energy": "0x1.9cc68af77e2acp-8",
        "bottleneck_ring_energy": "0x1.2d931e65fe5dfp-8",
        "max_ring_delay": "0x1.2ca008bc3b6fbp-1",
        "counters": (485, 485, 1186, 108),
        "node_power": {
            1: "0x1.5fe2ecdc882c3p-8",
            2: "0x1.9cc68af77e2acp-8",
            3: "0x1.ebc92fdc1543fp-9",
            36: "0x1.1dc4d2f293a00p-10",
        },
    },
}

# Zero-traffic periodic-charge paths: with no packets the only energy is
# the closed-form PeriodicCharge table, so every node lands on the same
# pinned power (horizon=50, seed=3, sampling once per 1e7 s).  X-MAC and
# SCP-MAC coincide because both charge one poll per wake-up interval.
GOLDEN_QUIET_POWERS = {
    "xmac": "0x1.4d81479e5e778p-11",
    "dmac": "0x1.1441d81bf3413p-10",
    "lmac": "0x1.0f22d02c9a62ep-7",
    "scpmac": "0x1.4d81479e5e778p-11",
}


def _check_golden(result, golden):
    assert result.system_energy == float.fromhex(golden["system_energy"])
    assert result.bottleneck_ring_energy == float.fromhex(
        golden["bottleneck_ring_energy"]
    )
    assert result.max_ring_delay() == float.fromhex(golden["max_ring_delay"])
    assert (
        result.generated_packets,
        result.delivered_packets,
        result.channel_transmissions,
        result.channel_deferrals,
    ) == golden["counters"]
    for node_id, expected in golden["node_power"].items():
        assert result.node_power[node_id] == float.fromhex(expected)


class TestTraceCompatibility:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", sorted(GOLDEN_TRACES))
    def test_kernel_reproduces_pre_refactor_traces_bit_identically(
        self, scenario, name, engine
    ):
        model, params = {
            case[0]: (case[1], case[2]) for case in protocol_cases(scenario)
        }[name]
        result = simulate_protocol(
            model, params, SimulationConfig(horizon=600.0, seed=11, engine=engine)
        )
        _check_golden(result, GOLDEN_TRACES[name])

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", sorted(GOLDEN_EDGE_TRACES))
    def test_edge_path_traces_are_pinned(self, name, engine):
        golden = GOLDEN_EDGE_TRACES[name]
        contended = Scenario(
            topology=RingTopology(depth=3, density=4), sampling_rate=1.0 / 20.0
        )
        model = {
            case[0]: case[1] for case in protocol_cases(contended)
        }[golden["protocol"]]
        result = simulate_protocol(
            model,
            golden["params"],
            SimulationConfig(horizon=300.0, seed=7, engine=engine),
        )
        # The edge path actually fired: deferrals in the pinned counters.
        assert golden["counters"][3] > 0
        _check_golden(result, golden)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", sorted(GOLDEN_QUIET_POWERS))
    def test_zero_traffic_periodic_charges_are_pinned(self, name, engine):
        quiet = Scenario(
            topology=RingTopology(depth=3, density=4), sampling_rate=1.0 / 1.0e7
        )
        model, params = {
            case[0]: (case[1], case[2]) for case in protocol_cases(quiet)
        }[name]
        result = simulate_protocol(
            model, params, SimulationConfig(horizon=50.0, seed=3, engine=engine)
        )
        assert result.generated_packets == 0
        expected = float.fromhex(GOLDEN_QUIET_POWERS[name])
        assert set(result.node_power.values()) == {expected}


class TestSeedDeterminism:
    @pytest.mark.parametrize(
        "name", ["xmac", "dmac", "lmac", "scpmac"]
    )
    def test_two_runs_at_the_same_seed_are_identical(self, scenario, name):
        model, params = {
            case[0]: (case[1], case[2]) for case in protocol_cases(scenario)
        }[name]
        config = SimulationConfig(horizon=400.0, seed=9)
        first = simulate_protocol(model, params, config)
        second = simulate_protocol(model, params, config)
        # Exact float equality on every per-node power — not approx: the
        # determinism guarantee the campaign artifacts build on.
        assert first.node_power == second.node_power
        assert first.delays_by_ring == second.delays_by_ring
        assert first.as_dict() == second.as_dict()

    @pytest.mark.parametrize("name", ["xmac", "scpmac"])
    def test_different_seeds_diverge(self, scenario, name):
        model, params = {
            case[0]: (case[1], case[2]) for case in protocol_cases(scenario)
        }[name]
        first = simulate_protocol(model, params, SimulationConfig(horizon=400.0, seed=1))
        second = simulate_protocol(model, params, SimulationConfig(horizon=400.0, seed=2))
        assert first.node_power != second.node_power


class TestEmptyWakeups:
    """Zero pending packets at wake-up: only the periodic table is charged."""

    @pytest.mark.parametrize("name", ["xmac", "dmac", "lmac", "scpmac"])
    def test_traffic_free_run_charges_exactly_the_periodic_table(self, name):
        quiet = Scenario(
            topology=RingTopology(depth=3, density=4), sampling_rate=1.0 / 1.0e7
        )
        model, params = {
            case[0]: (case[1], case[2]) for case in protocol_cases(quiet)
        }[name]
        horizon = 50.0
        result = simulate_protocol(model, params, SimulationConfig(horizon=horizon, seed=3))
        assert result.generated_packets == 0
        assert result.delivered_packets == 0
        assert result.delivery_ratio == 0.0
        with pytest.raises(SimulationError):
            result.max_ring_delay()
        # Every node's power equals the closed-form periodic cost: the
        # kernel charged nothing but the PeriodicCharge table.
        from repro.simulation.mac.factory import behaviour_for_model

        behaviour = behaviour_for_model(model, params, np.random.default_rng(0))
        reference = make_node(1, 1, 0)
        behaviour.charge_periodic_energy(reference, horizon)
        expected = reference.energy.average_power(horizon)
        for power in result.node_power.values():
            assert power == expected


class TestContentionCollision:
    """Two same-slot contenders: one defers behind the other's reservation."""

    def test_second_contender_defers_behind_the_first(self, scenario):
        model = DMACModel(scenario)
        behaviour = DMACSimBehaviour(model, {"frame_length": 1.0}, np.random.default_rng(2))
        deployment = ring_deployment(depth=2, density=6, seed=3)
        from repro.simulation.channel import Channel

        channel = Channel(deployment)
        # Find two same-ring neighbours: they share the transmit slot and
        # sense each other's carrier.
        pair = None
        for node_id in deployment.node_ids:
            if deployment.ring_of[node_id] != 2:
                continue
            for neighbour in deployment.neighbours_of(node_id):
                if neighbour != 0 and deployment.ring_of.get(neighbour) == 2:
                    pair = (node_id, neighbour)
                    break
            if pair:
                break
        assert pair is not None, "deployment has no same-ring neighbour pair"
        nodes = {}
        for node_id in pair:
            node = make_node(node_id, 2, deployment.parent_of(node_id))
            node.phase = behaviour.assign_phase(node)
            nodes[node_id] = node
        receivers = {
            node_id: make_node(deployment.parent_of(node_id), 1, 0)
            for node_id in pair
        }
        first = behaviour.plan_hop(nodes[pair[0]], receivers[pair[0]], 0.0, channel, [])
        second = behaviour.plan_hop(nodes[pair[1]], receivers[pair[1]], 0.0, channel, [])
        assert channel.deferrals >= 1
        # The collision resolves by deferral, never by overlap.
        assert second.transmission_start >= first.completion


class TestSlotOverflowRetry:
    """The kernel's RETRY transition: an exchange that cannot complete in the
    current cycle (the ack would time out past the slot) moves whole to the
    next cycle."""

    def test_dmac_exchange_that_misses_its_slot_retries_next_frame(self, scenario):
        model = DMACModel(scenario)
        behaviour = DMACSimBehaviour(model, {"frame_length": 1.0}, np.random.default_rng(2))
        deployment = chain_deployment(depth=3)
        from repro.simulation.channel import Channel

        channel = Channel(deployment)
        sender = make_node(3, 3, 2)
        sender.phase = behaviour.assign_phase(sender)  # ring 3 transmits at offset 0
        receiver = make_node(2, 2, 1)
        # A neighbour's transmission blocks the medium for most of the slot:
        # contention + data + ack no longer fit before the slot boundary.
        channel.reserve(sender=2, start=0.0, duration=0.9 * model.slot_time)
        outcome = behaviour.plan_hop(sender, receiver, 0.0, channel, [])
        assert outcome.transmission_start >= sender.phase + 1.0  # next frame's slot
        assert channel.deferrals >= 1

    def test_scpmac_lost_epoch_retries_at_next_poll(self, scenario):
        model = SCPMACModel(scenario)
        from repro.simulation.mac import SCPMACSimBehaviour
        from repro.simulation.channel import Channel

        behaviour = SCPMACSimBehaviour(model, {"poll_interval": 0.5}, np.random.default_rng(4))
        deployment = chain_deployment(depth=3)
        channel = Channel(deployment)
        phase = behaviour.assign_phase(make_node(2, 2, 1))
        from repro.simulation.mac import next_occurrence

        epoch = next_occurrence(0.0, 0.5, phase)
        channel.reserve(sender=1, start=0.0, duration=epoch + 1e-3)
        sender = make_node(2, 2, 1, phase=phase)
        receiver = make_node(1, 1, 0, phase=phase)
        outcome = behaviour.plan_hop(sender, receiver, 0.0, channel, [])
        assert outcome.transmission_start >= epoch + 0.5


class TestKernelPrimitives:
    def test_periodic_charge_validates_its_fields(self):
        with pytest.raises(SimulationError):
            PeriodicCharge(state=KernelState.POLL, interval=0.0, duration=1.0)
        with pytest.raises(SimulationError):
            PeriodicCharge(state=KernelState.POLL, interval=1.0, duration=-1.0)
        with pytest.raises(SimulationError):
            PeriodicCharge(state=KernelState.POLL, interval=1.0, duration=1.0, multiplier=-1)

    def test_medium_grant_rejects_transmission_before_grant(self):
        with pytest.raises(SimulationError):
            MediumGrant(start=1.0, transmission_start=0.5)

    def test_charge_maps_states_onto_radio_modes(self, scenario):
        model = XMACModel(scenario)
        from repro.simulation.mac import XMACSimBehaviour

        behaviour = XMACSimBehaviour(model, {"wakeup_interval": 0.5}, np.random.default_rng(0))
        node = make_node(1, 1, 0)
        behaviour.charge(node, KernelState.TX_DATA, 0.0, 0.25)
        behaviour.charge(node, KernelState.CONTEND, 0.25, 0.5)
        from repro.network.radio import RadioMode

        assert node.energy.active_time[RadioMode.TX] == pytest.approx(0.25)
        assert node.energy.active_time[RadioMode.RX] == pytest.approx(0.5)
        # Default activity labels fall back to the state value.
        assert set(node.energy.breakdown()) == {"tx-data", "contend"}
