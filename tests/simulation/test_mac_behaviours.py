"""Tests for the simulated MAC behaviours."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.network.deployment import chain_deployment
from repro.network.radio import cc2420
from repro.network.topology import RingTopology
from repro.protocols import DMACModel, LMACModel, SCPMACModel, XMACModel
from repro.scenario import Scenario
from repro.simulation.channel import Channel
from repro.simulation.energy import EnergyAccount
from repro.simulation.mac import (
    DMACSimBehaviour,
    LMACSimBehaviour,
    SCPMACSimBehaviour,
    XMACSimBehaviour,
    available_mac_protocols,
    behaviour_for_model,
    next_occurrence,
)
from repro.simulation.node import SensorNode


@pytest.fixture
def scenario() -> Scenario:
    return Scenario(topology=RingTopology(depth=3, density=4), sampling_rate=1.0 / 300.0)


def make_node(node_id, ring, parent, phase=0.0):
    node = SensorNode(
        node_id=node_id, ring=ring, parent=parent, energy=EnergyAccount(radio=cc2420())
    )
    node.phase = phase
    return node


class TestNextOccurrence:
    def test_before_offset_returns_offset(self):
        assert next_occurrence(0.0, 1.0, 0.4) == 0.4

    def test_mid_cycle_rounds_up(self):
        assert next_occurrence(1.5, 1.0, 0.4) == pytest.approx(2.4)

    def test_exact_hit_is_returned(self):
        assert next_occurrence(2.4, 1.0, 0.4) == pytest.approx(2.4)

    def test_invalid_period_rejected(self):
        with pytest.raises(SimulationError):
            next_occurrence(0.0, 0.0, 0.0)


class TestBehaviourFactory:
    def test_maps_models_to_behaviours(self, scenario):
        rng = np.random.default_rng(0)
        assert isinstance(
            behaviour_for_model(XMACModel(scenario), {"wakeup_interval": 0.5}, rng),
            XMACSimBehaviour,
        )
        assert isinstance(
            behaviour_for_model(DMACModel(scenario), {"frame_length": 1.0}, rng),
            DMACSimBehaviour,
        )
        lmac = LMACModel(scenario)
        assert isinstance(
            behaviour_for_model(lmac, {"slot_length": 0.02, "slot_count": 9.0}, rng),
            LMACSimBehaviour,
        )
        assert isinstance(
            behaviour_for_model(SCPMACModel(scenario), {"poll_interval": 0.5}, rng),
            SCPMACSimBehaviour,
        )

    def test_all_builtin_protocols_have_simulators(self):
        assert available_mac_protocols() == ["dmac", "lmac", "scpmac", "xmac"]

    def test_unsupported_model_rejected_with_simulable_names(
        self, scenario, analytical_only_model_class
    ):
        with pytest.raises(SimulationError, match="scpmac"):
            behaviour_for_model(
                analytical_only_model_class(scenario),
                {"interval": 0.5},
                np.random.default_rng(0),
            )


class TestXMACBehaviour:
    def test_hop_waits_for_receiver_poll(self, scenario):
        model = XMACModel(scenario)
        behaviour = XMACSimBehaviour(model, {"wakeup_interval": 0.5}, np.random.default_rng(1))
        deployment = chain_deployment(depth=3)
        channel = Channel(deployment)
        sender = make_node(2, 2, 1)
        receiver = make_node(1, 1, 0, phase=0.3)
        outcome = behaviour.plan_hop(sender, receiver, now=0.0, channel=channel, overhearers=[])
        # The strobe train covers the receiver's poll at t = 0.3.
        assert outcome.completion > 0.3
        assert outcome.completion < 0.3 + 0.1
        assert sender.energy.total_active_time() > 0
        assert receiver.energy.total_active_time() > 0

    def test_periodic_energy_scales_with_polls(self, scenario):
        model = XMACModel(scenario)
        behaviour = XMACSimBehaviour(model, {"wakeup_interval": 0.5}, np.random.default_rng(1))
        node = make_node(2, 2, 1)
        behaviour.charge_periodic_energy(node, horizon=100.0)
        expected_polls = int(100.0 / 0.5)
        poll_energy = node.energy.breakdown()["poll"]
        per_poll = (model.scenario.radio.wakeup_time + model.scenario.radio.carrier_sense_time)
        assert poll_energy == pytest.approx(expected_polls * per_poll * cc2420().power_rx)

    def test_overhearers_pay_only_if_poll_falls_in_strobe(self, scenario):
        model = XMACModel(scenario)
        behaviour = XMACSimBehaviour(model, {"wakeup_interval": 0.5}, np.random.default_rng(1))
        deployment = chain_deployment(depth=3)
        channel = Channel(deployment)
        sender = make_node(2, 2, 1)
        receiver = make_node(1, 1, 0, phase=0.25)
        listener = make_node(3, 3, 2, phase=0.1)  # polls at 0.1 < 0.25: overhears
        sleeper = make_node(4, 3, 2, phase=0.45)  # polls after the exchange finishes
        behaviour.plan_hop(sender, receiver, 0.0, channel, [listener, sleeper])
        assert listener.energy.total_active_time() > 0
        assert sleeper.energy.total_active_time() == 0.0


class TestDMACBehaviour:
    def test_hop_starts_in_senders_tx_slot(self, scenario):
        model = DMACModel(scenario)
        behaviour = DMACSimBehaviour(model, {"frame_length": 1.0}, np.random.default_rng(1))
        deployment = chain_deployment(depth=3)
        channel = Channel(deployment)
        sender = make_node(3, 3, 2, phase=behaviour.assign_phase(make_node(3, 3, 2)))
        receiver = make_node(2, 2, 1)
        outcome = behaviour.plan_hop(sender, receiver, now=0.2, channel=channel, overhearers=[])
        assert outcome.transmission_start >= next_occurrence(0.2, 1.0, sender.phase)

    def test_staggered_phases_decrease_toward_outer_rings(self, scenario):
        model = DMACModel(scenario)
        behaviour = DMACSimBehaviour(model, {"frame_length": 1.0}, np.random.default_rng(1))
        ring1 = behaviour.assign_phase(make_node(1, 1, 0))
        ring3 = behaviour.assign_phase(make_node(3, 3, 2))
        assert ring3 < ring1

    def test_periodic_energy_counts_two_slots_per_frame(self, scenario):
        model = DMACModel(scenario)
        behaviour = DMACSimBehaviour(model, {"frame_length": 2.0}, np.random.default_rng(1))
        node = make_node(2, 2, 1)
        behaviour.charge_periodic_energy(node, horizon=200.0)
        expected = int(200.0 / 2.0) * 2.0 * model.slot_time
        assert node.energy.total_active_time() == pytest.approx(expected)


class TestSCPMACBehaviour:
    def test_all_nodes_share_the_synchronized_phase(self, scenario):
        model = SCPMACModel(scenario)
        behaviour = SCPMACSimBehaviour(model, {"poll_interval": 0.5}, np.random.default_rng(3))
        phases = {behaviour.assign_phase(make_node(i, 1, 0)) for i in range(1, 6)}
        assert len(phases) == 1  # synchronized channel polling
        assert 0.0 <= phases.pop() < 0.5

    def test_hop_waits_for_the_next_common_poll(self, scenario):
        model = SCPMACModel(scenario)
        behaviour = SCPMACSimBehaviour(model, {"poll_interval": 0.5}, np.random.default_rng(3))
        deployment = chain_deployment(depth=3)
        channel = Channel(deployment)
        phase = behaviour.assign_phase(make_node(2, 2, 1))
        sender = make_node(2, 2, 1, phase=phase)
        receiver = make_node(1, 1, 0, phase=phase)
        outcome = behaviour.plan_hop(sender, receiver, now=0.0, channel=channel, overhearers=[])
        epoch = next_occurrence(0.0, 0.5, phase)
        # The tone starts at the epoch; data follows the tone and the second
        # contention backoff.
        assert outcome.transmission_start >= epoch + 2.0 * model.sync_error
        assert outcome.completion < epoch + 0.1

    def test_periodic_costs_cover_polls_and_sync_exchange(self, scenario):
        model = SCPMACModel(scenario)
        behaviour = SCPMACSimBehaviour(model, {"poll_interval": 0.5}, np.random.default_rng(3))
        node = make_node(2, 2, 1)
        behaviour.charge_periodic_energy(node, horizon=120.0)
        breakdown = node.energy.breakdown()
        radio = scenario.radio
        per_poll = radio.wakeup_time + radio.carrier_sense_time
        assert breakdown["poll"] == pytest.approx(
            int(120.0 / 0.5) * per_poll * radio.power_rx
        )
        assert breakdown["sync-tx"] == pytest.approx(
            int(120.0 / model.sync_period)
            * scenario.packets.sync_airtime(radio)
            * radio.power_tx
        )
        # Every neighbour's SYNC frame is received once per sync period.
        assert breakdown["sync-rx"] == pytest.approx(
            scenario.density * breakdown["sync-tx"] / radio.power_tx * radio.power_rx
        )

    def test_every_overhearer_samples_half_the_tone(self, scenario):
        model = SCPMACModel(scenario)
        behaviour = SCPMACSimBehaviour(model, {"poll_interval": 0.5}, np.random.default_rng(3))
        deployment = chain_deployment(depth=3)
        channel = Channel(deployment)
        phase = behaviour.assign_phase(make_node(2, 2, 1))
        sender = make_node(2, 2, 1, phase=phase)
        receiver = make_node(1, 1, 0, phase=phase)
        listeners = [make_node(3, 3, 2, phase=phase), make_node(4, 3, 2, phase=phase)]
        behaviour.plan_hop(sender, receiver, 0.0, channel, listeners)
        # Synchronized polling: the whole neighbourhood is awake at the
        # epoch, so every overhearer pays exactly half the tone.
        for listener in listeners:
            assert listener.energy.breakdown()["overhear"] == pytest.approx(
                0.5 * 2.0 * model.sync_error * scenario.radio.power_rx
            )

    def test_busy_epoch_retries_at_the_next_poll(self, scenario):
        model = SCPMACModel(scenario)
        behaviour = SCPMACSimBehaviour(model, {"poll_interval": 0.5}, np.random.default_rng(3))
        deployment = chain_deployment(depth=3)
        channel = Channel(deployment)
        phase = behaviour.assign_phase(make_node(2, 2, 1))
        epoch = next_occurrence(0.0, 0.5, phase)
        # Another transmission occupies the sender's neighbourhood across
        # the whole first epoch: the contention is lost and the hop moves
        # to the next synchronized poll.
        channel.reserve(sender=1, start=0.0, duration=epoch + 0.01)
        sender = make_node(2, 2, 1, phase=phase)
        receiver = make_node(1, 1, 0, phase=phase)
        outcome = behaviour.plan_hop(sender, receiver, 0.0, channel, [])
        assert outcome.transmission_start >= epoch + 0.5
        assert channel.deferrals >= 1


class TestLMACBehaviour:
    def test_hop_waits_for_own_slot(self, scenario):
        model = LMACModel(scenario)
        params = {"slot_length": 0.02, "slot_count": float(model.min_slot_count)}
        behaviour = LMACSimBehaviour(model, params, np.random.default_rng(1))
        deployment = chain_deployment(depth=3)
        channel = Channel(deployment)
        sender = make_node(2, 2, 1, phase=0.04)
        receiver = make_node(1, 1, 0)
        outcome = behaviour.plan_hop(sender, receiver, now=0.0, channel=channel, overhearers=[])
        assert outcome.transmission_start >= 0.04

    def test_periodic_energy_has_listen_and_control_tx(self, scenario):
        model = LMACModel(scenario)
        params = {"slot_length": 0.02, "slot_count": float(model.min_slot_count)}
        behaviour = LMACSimBehaviour(model, params, np.random.default_rng(1))
        node = make_node(2, 2, 1)
        behaviour.charge_periodic_energy(node, horizon=100.0)
        breakdown = node.energy.breakdown()
        assert breakdown["control-listen"] > 0
        assert breakdown["control-tx"] > 0

    def test_slot_phase_is_a_valid_slot_index(self, scenario):
        model = LMACModel(scenario)
        params = {"slot_length": 0.02, "slot_count": float(model.min_slot_count)}
        behaviour = LMACSimBehaviour(model, params, np.random.default_rng(5))
        for _ in range(20):
            phase = behaviour.assign_phase(make_node(2, 2, 1))
            index = phase / 0.02
            assert index == pytest.approx(round(index))
            assert 0 <= round(index) < model.min_slot_count
