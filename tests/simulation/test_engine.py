"""Tests for the discrete-event engine and energy accounting."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.network.radio import RadioMode, cc2420
from repro.simulation.energy import EnergyAccount
from repro.simulation.engine import EventQueue, Simulator


class TestEventQueue:
    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while (event := queue.pop()) is not None:
            event.action()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("first"))
        queue.push(1.0, lambda: order.append("second"))
        queue.pop().action()
        queue.pop().action()
        assert order == ["first", "second"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        handle.cancel()
        assert handle.cancelled
        assert queue.pop() is None
        assert len(queue) == 0

    def test_peek_time_ignores_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0


class TestSimulator:
    def test_run_until_processes_events_and_advances_clock(self):
        simulator = Simulator()
        seen = []
        simulator.schedule_at(1.0, lambda: seen.append(simulator.now))
        simulator.schedule_in(2.5, lambda: seen.append(simulator.now))
        simulator.run_until(10.0)
        assert seen == [1.0, 2.5]
        assert simulator.now == 10.0
        assert simulator.processed_events == 2

    def test_events_beyond_horizon_stay_pending(self):
        simulator = Simulator()
        simulator.schedule_at(5.0, lambda: None)
        simulator.run_until(1.0)
        assert simulator.pending_events() == 1

    def test_events_can_schedule_new_events(self):
        simulator = Simulator()
        seen = []

        def first():
            simulator.schedule_in(1.0, lambda: seen.append(simulator.now))

        simulator.schedule_at(1.0, first)
        simulator.run_until(5.0)
        assert seen == [2.0]

    def test_scheduling_in_the_past_is_rejected(self):
        simulator = Simulator()
        simulator.schedule_at(1.0, lambda: None)
        simulator.run_until(2.0)
        with pytest.raises(SimulationError):
            simulator.schedule_at(1.5, lambda: None)
        with pytest.raises(SimulationError):
            simulator.schedule_in(-1.0, lambda: None)

    def test_event_budget_guard(self):
        simulator = Simulator(max_events=10)

        def rescheduling():
            simulator.schedule_in(0.001, rescheduling)

        simulator.schedule_at(0.0, rescheduling)
        with pytest.raises(SimulationError):
            simulator.run_until(1.0)

    def test_run_until_backwards_rejected(self):
        simulator = Simulator()
        simulator.run_until(5.0)
        with pytest.raises(SimulationError):
            simulator.run_until(1.0)


class TestEnergyAccount:
    def test_total_energy_includes_residual_sleep(self):
        radio = cc2420()
        account = EnergyAccount(radio=radio)
        account.record(RadioMode.RX, 0.0, 10.0, activity="listen")
        expected = 10.0 * radio.power_rx + 90.0 * radio.power_sleep
        assert account.total_energy(100.0) == pytest.approx(expected)

    def test_average_power_and_duty_cycle(self):
        radio = cc2420()
        account = EnergyAccount(radio=radio)
        account.record(RadioMode.TX, 0.0, 5.0)
        assert account.duty_cycle(50.0) == pytest.approx(0.1)
        assert account.average_power(50.0) == pytest.approx(account.total_energy(50.0) / 50.0)

    def test_breakdown_by_activity(self):
        account = EnergyAccount(radio=cc2420())
        account.record(RadioMode.RX, 0.0, 1.0, activity="poll")
        account.record(RadioMode.RX, 1.0, 2.0, activity="poll")
        account.record(RadioMode.TX, 3.0, 1.0, activity="data")
        breakdown = account.breakdown()
        assert breakdown["poll"] == pytest.approx(3.0 * cc2420().power_rx)
        assert "data" in breakdown

    def test_zero_duration_is_a_no_op(self):
        account = EnergyAccount(radio=cc2420())
        account.record(RadioMode.RX, 0.0, 0.0)
        assert account.total_active_time() == 0.0

    def test_negative_duration_rejected(self):
        account = EnergyAccount(radio=cc2420())
        with pytest.raises(SimulationError):
            account.record(RadioMode.RX, 0.0, -1.0)

    def test_invalid_horizon_rejected(self):
        account = EnergyAccount(radio=cc2420())
        with pytest.raises(SimulationError):
            account.total_energy(0.0)
