"""Differential harness: the batched engine is bit-identical to the scalar one.

The batched engine (:mod:`repro.simulation.batched`) is only allowed to
exist because it changes *nothing*: every metric of every replication —
per-node power, per-ring delay lists, packet and channel counters — must
match the scalar driver bit for bit at the same seed.  This module enforces
that three ways:

* a seeded fuzzer sweeps the **full matrix** — every preset × every
  protocol (xmac, lmac, dmac, scpmac) × fuzzed (seed, horizon, sampling
  period) — as ~200 cases; the first :data:`FAST_CASES` run in tier-1
  (covering all four protocols), the full sweep is marked ``slow``;
* a campaign identity test proves whole campaign artifacts (JSON bytes
  included) are independent of ``sim_engine``;
* edge cases both engines must agree on: horizons shorter than one duty
  cycle, single replications, R=0, kernel-less fallback, invalid engines.

Every batched run uses ``strict=True`` and asserts engine provenance, so a
silent scalar fallback cannot masquerade as a passing differential case.
Floats are compared with ``==`` (bit-equality for the NaN-free quantities
the simulator produces); mismatches are reported in ``float.hex`` so a
one-ulp drift is visible in the failure message, together with the exact
``(preset, protocol, seed, horizon, period)`` tuple and a one-line repro
command.  Failing tuples are also appended to
:data:`FAILURE_LOG` (``differential-failures.txt``) so CI can upload them
as an artifact.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.network.topology import RingTopology
from repro.protocols.registry import create_protocol
from repro.scenario import Scenario
from repro.scenarios.presets import scenario_preset, scenario_presets
from repro.simulation import (
    SimulationConfig,
    simulate_protocol,
    simulate_protocol_batched,
)
from repro.simulation.batched import kernels
from repro.simulation.mac.xmac import XMACSimBehaviour
from repro.validation.campaign import CampaignSpec, run_campaign

#: Mid-box parameter vectors, one per protocol (the bench's choices).
PROTOCOL_PARAMS = {
    "xmac": {"wakeup_interval": 0.3},
    "dmac": {"frame_length": 1.0},
    "lmac": {"slot_length": 0.02, "slot_count": 9.0},
    "scpmac": {"poll_interval": 0.3},
}
PROTOCOLS = tuple(sorted(PROTOCOL_PARAMS))
ENGINES = ("scalar", "batched")

#: Fields of SimulationResult compared bit-for-bit.
_COMPARED_FIELDS = (
    "protocol",
    "parameters",
    "horizon",
    "node_power",
    "ring_power",
    "delays_by_ring",
    "generated_packets",
    "delivered_packets",
    "dropped_packets",
    "channel_transmissions",
    "channel_deferrals",
    "processed_events",
)


def _hex(value):
    """Floats as hex (exact), everything else as repr."""
    if isinstance(value, float):
        return float.hex(value)
    if isinstance(value, dict):
        return {key: _hex(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_hex(item) for item in value]
    return repr(value)


def assert_bit_identical(scalar, batched, context=""):
    """Assert two SimulationResults match field by field, bit for bit."""
    for field in _COMPARED_FIELDS:
        left = getattr(scalar, field)
        right = getattr(batched, field)
        assert left == right, (
            f"{context}: {field} diverged\n"
            f"  scalar:  {_hex(left)}\n"
            f"  batched: {_hex(right)}"
        )


def _traffic_scenario(preset_name: str, period: float) -> Scenario:
    """A preset's environment with a sampling period that produces traffic.

    Most presets sample once an hour, which generates nothing at the short
    horizons the fuzzer uses — the replacement keeps the preset's topology,
    radio and frame sizes and only raises the traffic rate.
    """
    preset = scenario_preset(preset_name)
    return dataclasses.replace(preset.scenario, sampling_rate=1.0 / period)


#: Rounds of the full matrix: every preset × every protocol per round, with
#: fuzzed seeds/horizons/periods.  8 presets × 4 protocols × 6 rounds = 192
#: cases.
MATRIX_ROUNDS = 6

#: Where failing repro tuples are appended (one JSON object per line); CI
#: uploads this file as an artifact when the sweep fails.
FAILURE_LOG = Path("differential-failures.txt")


def _generate_cases():
    """The deterministic full-matrix sweep; the module-level seed pins it.

    Cases are ordered preset-major / protocol-minor within each round, so
    the tier-1 prefix (:data:`FAST_CASES`) already covers all four
    protocols across several presets.
    """
    preset_names = sorted(preset.name for preset in scenario_presets())
    rng = np.random.default_rng(202608)
    cases = []
    index = 0
    for _ in range(MATRIX_ROUNDS):
        for preset in preset_names:
            for protocol in PROTOCOLS:
                seed = int(rng.integers(0, 2**31))
                horizon = float(rng.choice((60.0, 90.0, 150.0, 240.0)))
                period = float(rng.choice((30.0, 60.0, 120.0)))
                cases.append(
                    pytest.param(
                        preset,
                        protocol,
                        seed,
                        horizon,
                        period,
                        id=f"{index:03d}-{preset}-{protocol}-s{seed}",
                    )
                )
                index += 1
    return cases


CASES = _generate_cases()
#: Tier-1 subset: enough to catch a broken invariant on every push without
#: paying for the full sweep; covers all four protocols (matrix order).
FAST_CASES = CASES[:20]


def _run_both(preset, protocol, seed, horizon, period):
    scenario = _traffic_scenario(preset, period)
    model = create_protocol(protocol, scenario)
    params = PROTOCOL_PARAMS[protocol]
    scalar = simulate_protocol(
        model, params, SimulationConfig(horizon=horizon, seed=seed)
    )
    batched = simulate_protocol(
        model,
        params,
        SimulationConfig(horizon=horizon, seed=seed, engine="batched", strict=True),
    )
    return scalar, batched


def _check_case(preset, protocol, seed, horizon, period):
    """Run one matrix case; on failure, log the repro tuple and command."""
    case = {
        "preset": preset,
        "protocol": protocol,
        "seed": seed,
        "horizon": horizon,
        "period": period,
    }
    repro = (
        "PYTHONPATH=src python -m pytest "
        "tests/simulation/test_batched_differential.py "
        f"-m '' -k '{preset}-{protocol}-s{seed}'"
    )
    context = f"case {case!r}\n  repro: {repro}"
    try:
        scalar, batched = _run_both(preset, protocol, seed, horizon, period)
        # Provenance: strict mode already forbids the silent scalar
        # fallback, the field proves the fast path actually produced this.
        assert batched.engine == "batched", f"{context}: ran on {batched.engine!r}"
        assert scalar.engine == "scalar", f"{context}: ran on {scalar.engine!r}"
        assert_bit_identical(scalar, batched, context=context)
    except AssertionError:
        with FAILURE_LOG.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(case, sort_keys=True) + "\n")
        raise


class TestFuzzedIdentityFast:
    """Tier-1 subset of the differential sweep."""

    @pytest.mark.parametrize("preset,protocol,seed,horizon,period", FAST_CASES)
    def test_bit_identical(self, preset, protocol, seed, horizon, period):
        _check_case(preset, protocol, seed, horizon, period)

    def test_fast_subset_covers_every_protocol(self):
        covered = {case.values[1] for case in FAST_CASES}
        assert covered == set(PROTOCOLS)


@pytest.mark.slow
class TestFuzzedIdentityFull:
    """The full matrix sweep (deselected by default; ``-m slow`` runs it)."""

    @pytest.mark.parametrize("preset,protocol,seed,horizon,period", CASES[len(FAST_CASES):])
    def test_bit_identical(self, preset, protocol, seed, horizon, period):
        _check_case(preset, protocol, seed, horizon, period)


class TestCampaignIdentity:
    """``sim_engine`` is runtime provenance: campaign results don't move."""

    @staticmethod
    def _spec(engine: str) -> CampaignSpec:
        return CampaignSpec(
            scenarios=("high-rate",),
            protocols=PROTOCOLS,
            replications=2,
            horizon=200.0,
            grid_points_per_dimension=12,
            sim_engine=engine,
        )

    def test_cells_and_artifact_bytes_identical(self):
        scalar = run_campaign(self._spec("scalar"))
        batched = run_campaign(self._spec("batched"))
        scalar_bytes = json.dumps(scalar.as_dict(), sort_keys=True)
        batched_bytes = json.dumps(batched.as_dict(), sort_keys=True)
        assert scalar_bytes == batched_bytes

    def test_spec_dict_excludes_engine(self):
        # The artifact embeds the campaign spec; an engine field there would
        # break cross-engine byte-identity (and store replays).
        assert "sim_engine" not in self._spec("batched").as_dict()

    def test_unknown_engine_rejected(self):
        with pytest.raises(Exception, match="engine"):
            self._spec("vectorized")


class TestEdgeCases:
    """Degenerate inputs both engines must handle the same way."""

    @staticmethod
    def _model():
        scenario = Scenario(RingTopology(depth=3, density=4), sampling_rate=1.0 / 60.0)
        return create_protocol("xmac", scenario)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_horizon_shorter_than_one_duty_cycle(self, engine):
        # 50 ms horizon vs a 300 ms wake-up interval: zero periodic polls
        # fit, no packet is generated, every node idles at sleep power.
        model = self._model()
        config = SimulationConfig(horizon=0.05, seed=3, engine=engine)
        result = simulate_protocol(model, PROTOCOL_PARAMS["xmac"], config)
        assert result.generated_packets == 0
        sleep_power = model.scenario.radio.power_sleep
        assert set(result.node_power.values()) == {sleep_power}

    def test_short_horizon_identical_across_engines(self):
        model = self._model()
        scalar = simulate_protocol(
            model, PROTOCOL_PARAMS["xmac"], SimulationConfig(horizon=0.05, seed=3)
        )
        batched = simulate_protocol(
            model,
            PROTOCOL_PARAMS["xmac"],
            SimulationConfig(horizon=0.05, seed=3, engine="batched"),
        )
        assert_bit_identical(scalar, batched, context="short-horizon")

    def test_single_replication(self):
        model = self._model()
        config = SimulationConfig(horizon=300.0, seed=5)
        (batched,) = simulate_protocol_batched(
            model, PROTOCOL_PARAMS["xmac"], [config]
        )
        scalar = simulate_protocol(model, PROTOCOL_PARAMS["xmac"], config)
        assert_bit_identical(scalar, batched, context="single-replication")

    def test_zero_replications_is_a_clean_error(self):
        with pytest.raises(SimulationError, match="at least one replication"):
            simulate_protocol_batched(self._model(), PROTOCOL_PARAMS["xmac"], [])

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError, match="unknown simulation engine"):
            SimulationConfig(engine="vectorized")

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_no_protocol_falls_back(self, protocol):
        # All four built-in protocols have batch kernels: strict mode must
        # succeed and the result must carry batched provenance.
        scenario = Scenario(RingTopology(depth=3, density=4), sampling_rate=1.0 / 60.0)
        model = create_protocol(protocol, scenario)
        params = PROTOCOL_PARAMS[protocol]
        scalar = simulate_protocol(
            model, params, SimulationConfig(horizon=300.0, seed=9)
        )
        batched = simulate_protocol(
            model,
            params,
            SimulationConfig(horizon=300.0, seed=9, engine="batched", strict=True),
        )
        assert batched.engine == "batched"
        assert_bit_identical(scalar, batched, context=f"strict-{protocol}")

    def test_kernel_less_behaviour_falls_back_transparently(self, monkeypatch):
        # Unregister X-MAC's kernel to simulate a user-registered behaviour
        # without one: non-strict configs silently get the scalar result.
        monkeypatch.delitem(kernels._KERNELS, XMACSimBehaviour)
        model = self._model()
        params = PROTOCOL_PARAMS["xmac"]
        scalar = simulate_protocol(
            model, params, SimulationConfig(horizon=300.0, seed=9)
        )
        batched = simulate_protocol(
            model, params, SimulationConfig(horizon=300.0, seed=9, engine="batched")
        )
        assert batched.engine == "scalar"
        assert_bit_identical(scalar, batched, context="fallback-xmac")

    def test_strict_refuses_kernel_less_fallback(self, monkeypatch):
        monkeypatch.delitem(kernels._KERNELS, XMACSimBehaviour)
        model = self._model()
        config = SimulationConfig(horizon=300.0, seed=9, engine="batched", strict=True)
        with pytest.raises(SimulationError, match="no batch kernel"):
            simulate_protocol(model, PROTOCOL_PARAMS["xmac"], config)

    def test_strict_requires_batched_engine(self):
        with pytest.raises(SimulationError, match="strict"):
            SimulationConfig(engine="scalar", strict=True)

    def test_replications_vary_only_by_seed(self):
        # The batched entry point accepts heterogeneous configs; each one is
        # honoured independently.
        model = self._model()
        configs = [
            SimulationConfig(horizon=200.0, seed=seed, engine="batched")
            for seed in (1, 2, 3)
        ]
        results = simulate_protocol_batched(model, PROTOCOL_PARAMS["xmac"], configs)
        for config, result in zip(configs, results):
            scalar = simulate_protocol(
                model,
                PROTOCOL_PARAMS["xmac"],
                SimulationConfig(horizon=200.0, seed=config.seed),
            )
            assert_bit_identical(scalar, result, context=f"seed={config.seed}")
