"""Tests for the simulation driver."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.network.deployment import chain_deployment
from repro.network.topology import RingTopology
from repro.protocols import DMACModel, XMACModel
from repro.scenario import Scenario
from repro.simulation import SimulationConfig, simulate_protocol


@pytest.fixture
def scenario() -> Scenario:
    return Scenario(topology=RingTopology(depth=3, density=4), sampling_rate=1.0 / 120.0)


class TestSimulationRunner:
    def test_all_generated_packets_are_delivered_under_light_load(self, scenario):
        model = XMACModel(scenario)
        result = simulate_protocol(
            model, {"wakeup_interval": 0.3}, SimulationConfig(horizon=600.0, seed=2)
        )
        assert result.generated_packets > 50
        assert result.delivery_ratio == pytest.approx(1.0)
        assert result.dropped_packets == 0

    def test_results_are_reproducible_for_a_fixed_seed(self, scenario):
        model = XMACModel(scenario)
        config = SimulationConfig(horizon=300.0, seed=7)
        first = simulate_protocol(model, {"wakeup_interval": 0.3}, config)
        second = simulate_protocol(model, {"wakeup_interval": 0.3}, config)
        assert first.system_energy == pytest.approx(second.system_energy)
        assert first.max_ring_delay() == pytest.approx(second.max_ring_delay())
        assert first.generated_packets == second.generated_packets

    def test_different_seeds_give_different_traces(self, scenario):
        model = XMACModel(scenario)
        first = simulate_protocol(model, {"wakeup_interval": 0.3}, SimulationConfig(horizon=300.0, seed=1))
        second = simulate_protocol(model, {"wakeup_interval": 0.3}, SimulationConfig(horizon=300.0, seed=2))
        assert first.max_ring_delay() != pytest.approx(second.max_ring_delay(), rel=1e-6)

    def test_ring_powers_decrease_outward(self, scenario):
        model = XMACModel(scenario)
        result = simulate_protocol(
            model, {"wakeup_interval": 0.3}, SimulationConfig(horizon=600.0, seed=2)
        )
        assert result.ring_power[1] > result.ring_power[3]

    def test_delays_grow_with_source_ring(self, scenario):
        model = DMACModel(scenario)
        result = simulate_protocol(
            model, {"frame_length": 1.0}, SimulationConfig(horizon=900.0, seed=4)
        )
        ring_means = {ring: sum(v) / len(v) for ring, v in result.delays_by_ring.items() if v}
        assert ring_means[3] > ring_means[1]

    def test_explicit_deployment_is_used(self, scenario):
        model = XMACModel(scenario)
        deployment = chain_deployment(depth=3)
        result = simulate_protocol(
            model,
            {"wakeup_interval": 0.3},
            SimulationConfig(horizon=600.0, seed=2, deployment=deployment),
        )
        assert set(result.node_power) == {1, 2, 3}

    def test_shorter_wakeup_interval_lowers_delay_and_raises_idle_energy(self, scenario):
        model = XMACModel(scenario)
        fast = simulate_protocol(model, {"wakeup_interval": 0.1}, SimulationConfig(horizon=600.0, seed=2))
        slow = simulate_protocol(model, {"wakeup_interval": 1.0}, SimulationConfig(horizon=600.0, seed=2))
        assert fast.max_ring_delay() < slow.max_ring_delay()
        # Idle polling dominates at this traffic level, so the outer ring
        # (almost no forwarding) is strictly cheaper with a longer interval.
        assert fast.ring_power[3] > slow.ring_power[3]

    def test_summary_dictionary(self, scenario):
        model = XMACModel(scenario)
        result = simulate_protocol(model, {"wakeup_interval": 0.3}, SimulationConfig(horizon=300.0, seed=2))
        summary = result.as_dict()
        assert summary["protocol"] == "X-MAC"
        assert summary["delivered"] <= summary["generated"]

    def test_invalid_config_rejected(self):
        with pytest.raises(SimulationError):
            SimulationConfig(horizon=-1.0)
        with pytest.raises(SimulationError):
            SimulationConfig(generation_cutoff=0.0)
        with pytest.raises(SimulationError):
            SimulationConfig(queue_capacity=0)

    def test_empty_result_guards(self, scenario):
        from repro.simulation.runner import SimulationResult

        empty = SimulationResult(protocol="X-MAC", parameters={}, horizon=10.0)
        with pytest.raises(SimulationError):
            _ = empty.system_energy
        with pytest.raises(SimulationError):
            empty.max_ring_delay()
