"""The benchmark regression gate (``tools/check_bench.py``)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_gate():
    spec = importlib.util.spec_from_file_location(
        "check_bench", REPO_ROOT / "tools" / "check_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_bench = _load_gate()


def artifact(tmp_path, name, throughputs, batched=None):
    payload = {
        "schema": "repro.bench.simulator",
        "schema_version": 1,
        "protocols": {
            protocol: {"events": 1000, "seconds": 1.0, "events_per_second": value,
                       "delivered": 10}
            for protocol, value in throughputs.items()
        },
    }
    if batched is not None:
        payload["batched"] = {
            protocol: {"events": 6000, "seconds": 1.0, "events_per_second": value,
                       "speedup_vs_scalar": speedup}
            for protocol, (value, speedup) in batched.items()
        }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


def run_gate(baseline, fresh, *extra):
    return check_bench.main(
        ["--baseline", str(baseline), "--fresh", str(fresh), *extra]
    )


class TestGate:
    def test_identical_passes(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0, "lmac": 50000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0, "lmac": 50000.0})
        assert run_gate(base, fresh) == 0
        assert "all 2 gated entries within bounds" in capsys.readouterr().out

    def test_noise_within_floor_passes(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 0.8 * 30000.0})
        assert run_gate(base, fresh) == 0

    def test_regression_below_floor_fails(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0, "lmac": 50000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 0.5 * 30000.0, "lmac": 50000.0})
        assert run_gate(base, fresh) == 1
        out = capsys.readouterr().out
        assert "FAIL xmac" in out
        assert "OK   lmac" in out

    def test_speedup_only_warns(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 2.0 * 30000.0})
        assert run_gate(base, fresh) == 0
        assert "WARN xmac" in capsys.readouterr().out

    def test_protocol_missing_from_fresh_fails(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0, "lmac": 50000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        assert run_gate(base, fresh) == 1
        assert "FAIL lmac" in capsys.readouterr().out

    def test_new_protocol_does_not_gate(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0, "scpmac": 1.0})
        assert run_gate(base, fresh) == 0
        assert "NOTE scpmac" in capsys.readouterr().out

    def test_custom_thresholds(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 0.8 * 30000.0})
        assert run_gate(base, fresh, "--fail-below", "0.9") == 1


class TestBatchedGate:
    """The ``batched`` section: relative regression + absolute speedup floor."""

    def test_identical_batched_passes(self, tmp_path, capsys):
        stats = {"xmac": (300000.0, 10.0), "lmac": (400000.0, 6.5)}
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0}, batched=stats)
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0}, batched=stats)
        assert run_gate(base, fresh) == 0
        out = capsys.readouterr().out
        assert "OK   batched/xmac" in out
        assert "OK   batched xmac: 10.0x vs scalar" in out
        assert "all 3 gated entries within bounds" in out

    def test_batched_throughput_regression_fails(self, tmp_path, capsys):
        base = artifact(
            tmp_path, "base.json", {"xmac": 30000.0}, batched={"xmac": (300000.0, 10.0)}
        )
        fresh = artifact(
            tmp_path, "fresh.json", {"xmac": 30000.0}, batched={"xmac": (100000.0, 10.0)}
        )
        assert run_gate(base, fresh) == 1
        assert "FAIL batched/xmac" in capsys.readouterr().out

    def test_speedup_below_floor_fails(self, tmp_path, capsys):
        base = artifact(
            tmp_path, "base.json", {"xmac": 30000.0}, batched={"xmac": (300000.0, 10.0)}
        )
        fresh = artifact(
            tmp_path, "fresh.json", {"xmac": 30000.0}, batched={"xmac": (300000.0, 3.0)}
        )
        assert run_gate(base, fresh) == 1
        assert "FAIL batched xmac: 3.0x vs scalar (floor 5x)" in capsys.readouterr().out

    def test_custom_speedup_floor(self, tmp_path):
        base = artifact(
            tmp_path, "base.json", {"xmac": 30000.0}, batched={"xmac": (300000.0, 6.0)}
        )
        fresh = artifact(
            tmp_path, "fresh.json", {"xmac": 30000.0}, batched={"xmac": (300000.0, 6.0)}
        )
        assert run_gate(base, fresh, "--min-batched-speedup", "7.0") == 1
        assert run_gate(base, fresh, "--min-batched-speedup", "0") == 0

    def test_batched_missing_from_fresh_fails(self, tmp_path, capsys):
        base = artifact(
            tmp_path, "base.json", {"xmac": 30000.0}, batched={"xmac": (300000.0, 10.0)}
        )
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        assert run_gate(base, fresh) == 1
        assert "FAIL batched/xmac: baseline has it" in capsys.readouterr().out

    def test_artifact_without_batched_section_still_gates_scalar(self, tmp_path):
        # Pre-batched artifacts (no "batched" key) stay valid inputs.
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        assert run_gate(base, fresh) == 0

    def test_fresh_speedup_gates_even_without_baseline_entry(self, tmp_path, capsys):
        # A brand-new batched protocol has no baseline to compare against,
        # but its absolute speedup floor applies from the first run.
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(
            tmp_path, "fresh.json", {"xmac": 30000.0}, batched={"lmac": (300000.0, 2.0)}
        )
        assert run_gate(base, fresh) == 1
        assert "FAIL batched lmac" in capsys.readouterr().out

    def test_per_protocol_floor_overrides_global(self, tmp_path, capsys):
        # dmac at 3.5x fails the global 5x floor but passes its own 3x one;
        # xmac keeps the global floor in the same run.
        stats = {"dmac": (300000.0, 3.5), "xmac": (300000.0, 10.0)}
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0}, batched=stats)
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0}, batched=stats)
        assert run_gate(base, fresh) == 1
        assert run_gate(base, fresh, "--batched-speedup-floor", "dmac=3") == 0
        out = capsys.readouterr().out
        assert "OK   batched dmac: 3.5x vs scalar (floor 3x)" in out
        assert "OK   batched xmac: 10.0x vs scalar (floor 5x)" in out

    def test_per_protocol_floor_of_zero_disables_only_that_protocol(self, tmp_path):
        stats = {"dmac": (300000.0, 1.5), "xmac": (300000.0, 10.0)}
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0}, batched=stats)
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0}, batched=stats)
        assert run_gate(base, fresh, "--batched-speedup-floor", "dmac=0") == 0

    def test_floored_protocol_missing_from_fresh_fails(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        assert (
            run_gate(base, fresh, "--batched-speedup-floor", "scpmac=3") == 1
        )
        assert "floored protocol missing" in capsys.readouterr().out

    def test_malformed_floor_spec_rejected(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        for spec in ("dmac", "=3", "dmac=three", "dmac=-1"):
            with pytest.raises(SystemExit):
                run_gate(base, fresh, "--batched-speedup-floor", spec)


def service_artifact(tmp_path, name, warm_rps, **overrides):
    payload = {
        "schema": "repro.bench.service",
        "schema_version": 1,
        "grid_points": 16,
        "units": 3,
        "workers": 2,
        "cold_latency_seconds": 0.8,
        "warm_requests": 100,
        "warm_seconds": 0.07,
        "warm_requests_per_second": warm_rps,
        **overrides,
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestServiceGate:
    """The ``--service`` artifact: absolute warm-hit throughput floor."""

    def test_above_floor_passes(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        service = service_artifact(tmp_path, "service.json", 1400.0)
        assert run_gate(base, fresh, "--service", str(service)) == 0
        out = capsys.readouterr().out
        assert "OK   service: warm hits 1,400 req/s" in out
        assert "all 2 gated entries within bounds" in out

    def test_below_floor_fails(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        service = service_artifact(tmp_path, "service.json", 10.0)
        assert run_gate(base, fresh, "--service", str(service)) == 1
        assert "FAIL service" in capsys.readouterr().out

    def test_custom_floor(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        service = service_artifact(tmp_path, "service.json", 50.0)
        args = ["--service", str(service), "--min-service-warm-rps"]
        assert run_gate(base, fresh, *args, "100") == 1
        assert run_gate(base, fresh, *args, "40") == 0
        assert run_gate(base, fresh, *args, "0") == 0  # disabled

    def test_missing_throughput_field_fails(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        service = service_artifact(
            tmp_path, "service.json", "not-a-number"
        )
        assert run_gate(base, fresh, "--service", str(service)) == 1
        assert "no usable warm_requests_per_second" in capsys.readouterr().out

    def test_wrong_service_schema_rejected(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        with pytest.raises(SystemExit, match="artifact"):
            run_gate(base, fresh, "--service", str(base))

    def test_missing_service_artifact_rejected(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        with pytest.raises(SystemExit, match="not found"):
            run_gate(base, fresh, "--service", str(tmp_path / "nope.json"))


def solver_artifact(tmp_path, name, speedup, **overrides):
    payload = {
        "schema": "repro.bench.solver",
        "schema_version": 1,
        "grid_points_per_dimension": 60,
        "rules": {
            "lmac/P1-energy": {
                "nominal_evaluations": 3600,
                "adaptive_evaluations": 600,
                "cells_pruned": 100,
                "exhaustive_seconds": 0.01,
                "adaptive_seconds": 0.01,
                "evaluation_speedup": 6.0,
            }
        },
        "aggregate": {
            "nominal_evaluations": 7560,
            "adaptive_evaluations": 1080,
            "evaluation_speedup": speedup,
        },
        **overrides,
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestSolverGate:
    """The ``--solver`` artifact: absolute evaluation-speedup floor."""

    def test_above_floor_passes(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        solver = solver_artifact(tmp_path, "solver.json", 6.9)
        assert run_gate(base, fresh, "--solver", str(solver)) == 0
        out = capsys.readouterr().out
        assert "OK   solver: aggregate 6.90x fewer evaluations" in out
        assert "NOTE solver lmac/P1-energy: 6.00x" in out
        assert "all 2 gated entries within bounds" in out

    def test_below_floor_fails(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        solver = solver_artifact(tmp_path, "solver.json", 3.2)
        assert run_gate(base, fresh, "--solver", str(solver)) == 1
        assert "FAIL solver: aggregate 3.20x" in capsys.readouterr().out

    def test_custom_floor(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        solver = solver_artifact(tmp_path, "solver.json", 3.2)
        args = ["--solver", str(solver), "--min-solver-speedup"]
        assert run_gate(base, fresh, *args, "4") == 1
        assert run_gate(base, fresh, *args, "3") == 0
        assert run_gate(base, fresh, *args, "0") == 0  # disabled

    def test_missing_aggregate_fails(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        solver = solver_artifact(tmp_path, "solver.json", 6.9, aggregate={})
        assert run_gate(base, fresh, "--solver", str(solver)) == 1
        assert "no usable aggregate evaluation_speedup" in capsys.readouterr().out

    def test_wrong_solver_schema_rejected(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        with pytest.raises(SystemExit, match="artifact"):
            run_gate(base, fresh, "--solver", str(base))

    def test_missing_solver_artifact_rejected(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        with pytest.raises(SystemExit, match="not found"):
            run_gate(base, fresh, "--solver", str(tmp_path / "nope.json"))


class TestArtifactValidation:
    def test_missing_fresh_artifact(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        with pytest.raises(SystemExit, match="not found"):
            run_gate(base, tmp_path / "nope.json")

    def test_wrong_schema(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something.else"}))
        with pytest.raises(SystemExit, match="artifact"):
            run_gate(base, bad)

    def test_invalid_json(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        with pytest.raises(SystemExit, match="JSON"):
            run_gate(base, bad)


class TestCommittedBaseline:
    def test_baseline_artifact_is_valid(self):
        payload = check_bench.load_artifact(
            REPO_ROOT / "benchmarks" / "BENCH_simulator.json"
        )
        throughputs = check_bench.throughputs(payload)
        assert {"xmac", "dmac", "lmac", "scpmac"} <= set(throughputs)
        assert all(value > 0 for value in throughputs.values())

    def test_baseline_batched_section_meets_the_floor(self):
        payload = check_bench.load_artifact(
            REPO_ROOT / "benchmarks" / "BENCH_simulator.json"
        )
        batched = check_bench.batched_stats(payload)
        # All four protocols batch since the engine-completion PR.
        assert {"xmac", "dmac", "lmac", "scpmac"} <= set(batched)
        # The acceptance bars recorded in the committed baseline itself:
        # >=5x for the original kernels, >=3x for the fresh dmac/scpmac ones.
        for name, row in batched.items():
            floor = 3.0 if name in ("dmac", "scpmac") else 5.0
            assert row["speedup_vs_scalar"] >= floor, (name, row)

    def test_baseline_gates_against_itself(self, capsys):
        baseline = REPO_ROOT / "benchmarks" / "BENCH_simulator.json"
        assert run_gate(baseline, baseline) == 0

    def test_solver_baseline_meets_the_floor(self):
        payload = check_bench.load_solver_artifact(
            REPO_ROOT / "benchmarks" / "BENCH_solver.json"
        )
        # The acceptance bar recorded in the committed baseline itself.
        assert payload["aggregate"]["evaluation_speedup"] >= 5.0
        assert not check_bench.check_solver_bench(payload, 5.0)
