"""The benchmark regression gate (``tools/check_bench.py``)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_gate():
    spec = importlib.util.spec_from_file_location(
        "check_bench", REPO_ROOT / "tools" / "check_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_bench = _load_gate()


def artifact(tmp_path, name, throughputs):
    payload = {
        "schema": "repro.bench.simulator",
        "schema_version": 1,
        "protocols": {
            protocol: {"events": 1000, "seconds": 1.0, "events_per_second": value,
                       "delivered": 10}
            for protocol, value in throughputs.items()
        },
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


def run_gate(baseline, fresh, *extra):
    return check_bench.main(
        ["--baseline", str(baseline), "--fresh", str(fresh), *extra]
    )


class TestGate:
    def test_identical_passes(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0, "lmac": 50000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0, "lmac": 50000.0})
        assert run_gate(base, fresh) == 0
        assert "all 2 protocol(s) within bounds" in capsys.readouterr().out

    def test_noise_within_floor_passes(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 0.8 * 30000.0})
        assert run_gate(base, fresh) == 0

    def test_regression_below_floor_fails(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0, "lmac": 50000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 0.5 * 30000.0, "lmac": 50000.0})
        assert run_gate(base, fresh) == 1
        out = capsys.readouterr().out
        assert "FAIL xmac" in out
        assert "OK   lmac" in out

    def test_speedup_only_warns(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 2.0 * 30000.0})
        assert run_gate(base, fresh) == 0
        assert "WARN xmac" in capsys.readouterr().out

    def test_protocol_missing_from_fresh_fails(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0, "lmac": 50000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0})
        assert run_gate(base, fresh) == 1
        assert "FAIL lmac" in capsys.readouterr().out

    def test_new_protocol_does_not_gate(self, tmp_path, capsys):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 30000.0, "scpmac": 1.0})
        assert run_gate(base, fresh) == 0
        assert "NOTE scpmac" in capsys.readouterr().out

    def test_custom_thresholds(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        fresh = artifact(tmp_path, "fresh.json", {"xmac": 0.8 * 30000.0})
        assert run_gate(base, fresh, "--fail-below", "0.9") == 1


class TestArtifactValidation:
    def test_missing_fresh_artifact(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        with pytest.raises(SystemExit, match="not found"):
            run_gate(base, tmp_path / "nope.json")

    def test_wrong_schema(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something.else"}))
        with pytest.raises(SystemExit, match="artifact"):
            run_gate(base, bad)

    def test_invalid_json(self, tmp_path):
        base = artifact(tmp_path, "base.json", {"xmac": 30000.0})
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        with pytest.raises(SystemExit, match="JSON"):
            run_gate(base, bad)


class TestCommittedBaseline:
    def test_baseline_artifact_is_valid(self):
        payload = check_bench.load_artifact(
            REPO_ROOT / "benchmarks" / "BENCH_simulator.json"
        )
        throughputs = check_bench.throughputs(payload)
        assert {"xmac", "dmac", "lmac", "scpmac"} <= set(throughputs)
        assert all(value > 0 for value in throughputs.values())

    def test_baseline_gates_against_itself(self, capsys):
        baseline = REPO_ROOT / "benchmarks" / "BENCH_simulator.json"
        assert run_gate(baseline, baseline) == 0
