"""ScenarioSuite: (scenario × protocol) batches through the runtime layer."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime import SolveCache, build_runner
from repro.scenario import Scenario
from repro.scenarios import (
    ScenarioPreset,
    ScenarioSuite,
    run_scenario_suite,
    scenario_preset,
)

#: Coarse solver grid: the suite tests exercise plumbing, not precision.
GRID = 25


def _tiny_preset(name: str = "tiny", **overrides) -> ScenarioPreset:
    defaults = {
        "name": name,
        "title": "Tiny test scenario",
        "description": "Three shallow rings for fast suite tests.",
        "scenario": Scenario(sampling_rate=1.0 / 600.0),
        "energy_budget": 0.06,
        "max_delay": 6.0,
    }
    defaults.update(overrides)
    return ScenarioPreset(**defaults)


class TestConstruction:
    def test_defaults_cover_all_pairs(self):
        suite = ScenarioSuite()
        assert suite.pair_count == len(suite.presets) * len(suite.protocols)
        assert len(suite.presets) >= 6
        assert "xmac" in suite.protocols

    def test_accepts_names_and_instances(self):
        suite = ScenarioSuite(
            scenarios=["paper-default", _tiny_preset()], protocols=("xmac",)
        )
        assert [preset.name for preset in suite.presets] == ["paper-default", "tiny"]

    def test_protocol_aliases_canonicalized(self):
        suite = ScenarioSuite(scenarios=("paper-default",), protocols=("X-MAC",))
        assert suite.protocols == ["xmac"]

    def test_rejects_empty_scenarios(self):
        with pytest.raises(ConfigurationError):
            ScenarioSuite(scenarios=())

    def test_rejects_duplicate_scenarios(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ScenarioSuite(scenarios=("paper-default", "paper-default"))

    def test_rejects_unknown_scenario(self):
        with pytest.raises(ConfigurationError, match="known presets"):
            ScenarioSuite(scenarios=("no-such-scenario",))

    def test_rejects_non_scenario_objects(self):
        with pytest.raises(ConfigurationError):
            ScenarioSuite(scenarios=(42,))  # type: ignore[arg-type]


class TestRun:
    def test_runs_all_pairs_and_reports_cells(self):
        result = run_scenario_suite(
            scenarios=(_tiny_preset(),),
            protocols=("xmac", "dmac"),
            grid_points_per_dimension=GRID,
        )
        assert [(cell.scenario, cell.protocol) for cell in result.cells] == [
            ("tiny", "xmac"),
            ("tiny", "dmac"),
        ]
        assert all(cell.feasible for cell in result.cells)
        assert result.solution("tiny", "xmac").protocol == "X-MAC"
        assert result.solution("tiny", "lmac") is None  # not part of this run
        rows = result.rows()
        assert len(rows) == 2 and rows[0]["feasible"] is True

    def test_mixed_feasible_infeasible_rows_share_columns_and_render(self):
        """Feasible and infeasible cells must produce printable uniform rows."""
        from repro.analysis.reporting import format_table

        result = run_scenario_suite(
            scenarios=(_tiny_preset(name="impossible", max_delay=1e-6), _tiny_preset()),
            protocols=("xmac",),
            grid_points_per_dimension=GRID,
        )
        rows = result.rows()
        assert len(result.feasible_cells) == 1 and len(result.infeasible_cells) == 1
        columns = list(rows[0])
        assert all(list(row) == columns for row in rows)
        rendered = format_table(rows)  # must not raise on the mixed batch
        assert "impossible" in rendered and "tiny" in rendered

    def test_infeasible_scenario_does_not_poison_the_batch(self):
        """An impossible delay bound in one scenario leaves the others intact."""
        impossible = _tiny_preset(name="impossible", max_delay=1e-6)
        feasible = _tiny_preset(name="feasible")
        result = run_scenario_suite(
            scenarios=(impossible, feasible),
            protocols=("xmac",),
            grid_points_per_dimension=GRID,
        )
        by_scenario = result.by_scenario()
        assert not by_scenario["impossible"][0].feasible
        assert "delay" in by_scenario["impossible"][0].error
        assert by_scenario["feasible"][0].feasible
        assert len(result.infeasible_cells) == 1
        assert len(result.feasible_cells) == 1

    def test_unconstructible_model_recorded_as_infeasible_cell(self):
        """A scenario that empties a protocol's parameter space is data too."""
        # Density 1100 pushes LMAC's minimum slot count past the 10 s drift
        # bound: the maximum slot falls below the minimum slot and the
        # parameter space is empty, so the model cannot be used at all.
        broken = _tiny_preset(
            name="lmac-hostile",
            scenario=Scenario(sampling_rate=1.0 / 600.0).with_topology(density=1100),
        )
        result = run_scenario_suite(
            scenarios=(broken,),
            protocols=("xmac", "lmac"),
            grid_points_per_dimension=GRID,
        )
        cells = {cell.protocol: cell for cell in result.cells}
        assert cells["xmac"].feasible
        assert not cells["lmac"].feasible
        assert "model construction failed" in cells["lmac"].error

    def test_requirement_overrides_apply_to_every_preset(self):
        preset = _tiny_preset()
        result = run_scenario_suite(
            scenarios=(preset,),
            protocols=("xmac",),
            grid_points_per_dimension=GRID,
            max_delay=2.0,
        )
        solution = result.cells[0].solution
        assert solution.max_delay == 2.0
        assert solution.energy_budget == preset.energy_budget

    def test_process_pool_run_is_bit_identical_to_serial(self):
        scenarios = ("paper-default", "bursty")
        protocols = ("xmac", "dmac")
        serial = run_scenario_suite(
            scenarios=scenarios,
            protocols=protocols,
            runner=build_runner(workers=1, use_cache=False),
            grid_points_per_dimension=GRID,
        )
        parallel = run_scenario_suite(
            scenarios=scenarios,
            protocols=protocols,
            runner=build_runner(workers=2, use_cache=False),
            grid_points_per_dimension=GRID,
        )
        assert serial.rows() == parallel.rows()

    def test_suite_reuses_the_solve_cache(self):
        cache = SolveCache()
        kwargs = {
            "scenarios": ("paper-default",),
            "protocols": ("xmac",),
            "grid_points_per_dimension": GRID,
        }
        cold = run_scenario_suite(runner=build_runner(workers=1, cache=cache), **kwargs)
        warm_runner = build_runner(workers=1, cache=cache)
        warm = run_scenario_suite(runner=warm_runner, **kwargs)
        assert warm.cells[0].from_cache
        assert warm_runner.cache_stats().hits == 1
        assert cold.rows() == warm.rows()

    def test_suggested_requirements_feasible_for_paper_protocols(self):
        """Every built-in preset solves for the paper's three protocols."""
        result = run_scenario_suite(
            protocols=("xmac", "dmac", "lmac"),
            grid_points_per_dimension=20,
            runner=build_runner(workers=0, use_cache=False),
        )
        infeasible = [
            f"{cell.scenario}/{cell.protocol}" for cell in result.infeasible_cells
        ]
        assert not infeasible, f"infeasible pairs: {infeasible}"
        assert len(result.cells) == len(ScenarioSuite().presets) * 3
