"""Scenario preset registry: contents, lookup, immutability, extension."""

from __future__ import annotations

import dataclasses

import pytest

from repro.exceptions import ConfigurationError
from repro.scenario import Scenario
from repro.scenarios import (
    ScenarioPreset,
    available_scenarios,
    register_scenario_preset,
    scenario_by_name,
    scenario_preset,
    scenario_presets,
    unregister_scenario_preset,
)


class TestBuiltinRegistry:
    def test_at_least_six_presets_registered(self):
        assert len(available_scenarios()) >= 6

    def test_expected_axes_are_covered(self):
        names = set(available_scenarios())
        # Topology, workload and hardware variations promised by the library.
        assert {"paper-default", "dense-ring", "sparse-ring"} <= names
        assert {"low-power", "high-rate", "bursty"} <= names
        assert {"sub-ghz", "legacy-bitradio"} <= names

    def test_every_preset_is_documented(self):
        for preset in scenario_presets():
            assert preset.title.strip()
            assert len(preset.description.strip()) > 80, preset.name

    def test_every_preset_has_positive_requirements(self):
        for preset in scenario_presets():
            requirements = preset.requirements()
            assert requirements.energy_budget > 0
            assert requirements.max_delay > 0
            assert requirements.sampling_rate == preset.scenario.sampling_rate

    def test_radio_diversity(self):
        radios = {preset.scenario.radio.name for preset in scenario_presets()}
        assert "CC2420" in radios
        assert len(radios) >= 2, "library must include a non-CC2420 radio"

    def test_bursty_preset_has_bursty_traffic(self):
        preset = scenario_preset("bursty")
        assert preset.scenario.burstiness > 1.0
        assert scenario_preset("paper-default").scenario.burstiness == 1.0

    def test_describe_rows_share_columns(self):
        rows = [dict(preset.describe()) for preset in scenario_presets()]
        columns = list(rows[0])
        assert all(list(row) == columns for row in rows)


class TestLookup:
    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(ConfigurationError, match="known presets"):
            scenario_preset("no-such-scenario")
        with pytest.raises(ConfigurationError):
            scenario_by_name("no-such-scenario")

    def test_lookup_is_case_insensitive(self):
        assert scenario_preset("PAPER-DEFAULT").name == "paper-default"

    def test_scenario_by_name_returns_the_scenario(self):
        scenario = scenario_by_name("paper-default")
        assert isinstance(scenario, Scenario)
        assert scenario.depth == 5


class TestImmutability:
    def test_preset_is_frozen(self):
        preset = scenario_preset("paper-default")
        with pytest.raises(dataclasses.FrozenInstanceError):
            preset.energy_budget = 1.0

    def test_scenario_is_frozen(self):
        scenario = scenario_by_name("paper-default")
        with pytest.raises(dataclasses.FrozenInstanceError):
            scenario.sampling_rate = 1.0

    def test_registry_views_are_copies(self):
        names = available_scenarios()
        names.clear()
        assert available_scenarios(), "mutating the returned list must not affect the registry"


class TestRegistration:
    def _preset(self, name: str = "test-preset") -> ScenarioPreset:
        return ScenarioPreset(
            name=name,
            title="Test preset",
            description="A synthetic preset used only by the registry tests.",
            scenario=Scenario(sampling_rate=1.0 / 600.0),
            energy_budget=0.06,
            max_delay=6.0,
        )

    def test_register_and_unregister(self):
        preset = self._preset()
        register_scenario_preset(preset)
        try:
            assert scenario_preset("test-preset") is preset
        finally:
            unregister_scenario_preset("test-preset")
        with pytest.raises(ConfigurationError):
            scenario_preset("test-preset")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_scenario_preset(self._preset("paper-default"))

    def test_builtin_cannot_be_unregistered(self):
        with pytest.raises(ConfigurationError, match="built-in"):
            unregister_scenario_preset("paper-default")
        assert "paper-default" in available_scenarios()

    def test_non_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            register_scenario_preset(Scenario())  # type: ignore[arg-type]

    def test_invalid_names_rejected(self):
        for bad_name in ("", "Has Spaces", "CamelCase", "under_score", "-leading"):
            with pytest.raises(ConfigurationError):
                self._preset(bad_name)

    def test_blank_documentation_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty title"):
            ScenarioPreset(
                name="blank",
                title="  ",
                description="x",
                scenario=Scenario(),
                energy_budget=0.06,
                max_delay=6.0,
            )

    def test_non_positive_requirements_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            ScenarioPreset(
                name="bad-budget",
                title="t",
                description="d",
                scenario=Scenario(),
                energy_budget=0.0,
                max_delay=6.0,
            )
